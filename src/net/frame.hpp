// FrameAssembler: reassembles wire-codec frames from a byte stream.
//
// The wire codec (src/wire/codec.hpp) frames every message as
//
//   [u8 type][u64 payload length][u32 CRC-32][payload bytes]
//
// and decode_message assumes it sees at least one whole frame. A TCP
// stream offers no such courtesy: reads return arbitrary byte runs, a
// frame can arrive split at every byte boundary, and several frames can
// land in one read. The assembler closes that gap — feed() it whatever
// recv returned and next() hands back exactly the complete frames, in
// order, each one a contiguous buffer decode_message (or the control
// protocol's parser, which shares the frame shape) accepts.
//
// The only way an assembler fails is an oversized length claim: a header
// whose payload length exceeds the configured cap. That is reported as a
// structured DecodeStatus::kFrameTooLarge (with the stream offset of the
// offending header) rather than an allocation attempt — the header might
// be garbage bytes, and a total decoder must not let garbage size a
// buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "wire/codec.hpp"

namespace ssps::net {

class FrameAssembler {
 public:
  /// Frame header size: type byte + u64 payload length + u32 CRC.
  static constexpr std::size_t kHeaderBytes = 13;

  /// Default payload cap (64 MiB): far above any protocol frame, small
  /// enough that a garbage header cannot balloon the process.
  static constexpr std::size_t kDefaultMaxPayload = 64u << 20;

  explicit FrameAssembler(std::size_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends stream bytes. Accepts anything; framing errors surface from
  /// next(), not here.
  void feed(std::span<const std::uint8_t> data);

  /// The next complete frame (header + payload), or nullopt when the
  /// buffered bytes end mid-frame. After a failure (failed()) always
  /// nullopt — a stream that lied about a length has no trustworthy
  /// resynchronization point.
  std::optional<std::vector<std::uint8_t>> next();

  /// True once a header claimed a payload beyond the cap.
  bool failed() const { return failed_; }

  /// The failure, status kFrameTooLarge and offset = position of the
  /// offending frame's first byte in the whole stream.
  wire::DecodeError error() const { return error_; }

  /// Bytes buffered but not yet returned as frames.
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;      // prefix of buf_ already returned
  std::uint64_t stream_base_ = 0; // stream offset of buf_[0]
  std::size_t max_payload_;
  bool failed_ = false;
  wire::DecodeError error_;
};

}  // namespace ssps::net
