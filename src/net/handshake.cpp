#include "net/handshake.hpp"

#include "sim/message_pool.hpp"

namespace ssps::net {

bool send_hello(Socket& sock, sim::NodeId node) {
  const wire::Hello hello(wire::kProtocolVersion, node);
  std::vector<std::uint8_t> frame;
  if (!wire::encode_message(hello, frame)) return false;
  return sock.send_all(frame);
}

HelloResult expect_hello(Socket& sock, FrameAssembler& stream, int timeout_ms) {
  HelloResult out;
  const auto frame = sock.read_frame(stream, timeout_ms);
  if (!frame) {
    out.status = stream.failed() ? stream.error().status
                                 : wire::DecodeStatus::kTruncated;
    return out;
  }
  sim::MessagePool pool;
  const wire::DecodeResult decoded = wire::decode_message(*frame, pool);
  if (!decoded.ok()) {
    out.status = decoded.error.status;
    return out;
  }
  const auto* hello = sim::msg_cast<wire::Hello>(*decoded.msg);
  if (hello == nullptr) {
    out.status = wire::DecodeStatus::kBadPayload;
    return out;
  }
  out.ok = true;
  out.node = hello->node;
  return out;
}

}  // namespace ssps::net
