#include "net/frame.hpp"

namespace ssps::net {

void FrameAssembler::feed(std::span<const std::uint8_t> data) {
  if (failed_) return;  // the stream is already condemned
  // Compact before growing: once the consumed prefix dominates the
  // buffer, shift the live suffix down so the buffer stays bounded by
  // the largest in-flight frame, not the whole stream history.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    stream_base_ += consumed_;
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<std::vector<std::uint8_t>> FrameAssembler::next() {
  if (failed_) return std::nullopt;
  const std::size_t available = buf_.size() - consumed_;
  if (available < kHeaderBytes) return std::nullopt;
  const std::uint8_t* head = buf_.data() + consumed_;
  std::uint64_t payload_len = 0;
  for (int i = 0; i < 8; ++i) {
    payload_len |= static_cast<std::uint64_t>(head[1 + i]) << (8 * i);
  }
  if (payload_len > max_payload_) {
    failed_ = true;
    error_ = {wire::DecodeStatus::kFrameTooLarge,
              static_cast<std::size_t>(stream_base_ + consumed_)};
    return std::nullopt;
  }
  const std::size_t total = kHeaderBytes + static_cast<std::size_t>(payload_len);
  if (available < total) return std::nullopt;
  std::vector<std::uint8_t> frame(head, head + total);
  consumed_ += total;
  return frame;
}

}  // namespace ssps::net
