// Minimal localhost TCP wrappers for the multi-process deployment.
//
// Plain POSIX sockets, no external dependency: a move-only connected
// Socket (EINTR-safe full writes, chunked reads) and a loopback Listener
// with ephemeral-port discovery (bind port 0, read the real port back
// with getsockname — the orchestrator passes it to the daemons it
// spawns). Everything blocks with an explicit millisecond deadline; a
// deployment must fail loudly on a wedged peer, never hang a barrier
// forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/frame.hpp"

namespace ssps::net {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  /// Connects to 127.0.0.1:port, retrying refused connections until the
  /// deadline (the orchestrator and its daemons race at startup).
  static std::optional<Socket> connect_local(std::uint16_t port, int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Writes all of `data` (looping over short writes and EINTR).
  bool send_all(std::span<const std::uint8_t> data);

  /// Waits up to timeout_ms for readable data and feeds one recv's worth
  /// into `into`. Returns the byte count (> 0), 0 on orderly EOF, or -1
  /// on timeout/error.
  int recv_into(FrameAssembler& into, int timeout_ms);

  /// Reads until `from` yields one complete frame. nullopt on EOF,
  /// timeout, stream failure (FrameAssembler cap) or socket error.
  std::optional<std::vector<std::uint8_t>> read_frame(FrameAssembler& from,
                                                      int timeout_ms);

 private:
  int fd_ = -1;
};

class Listener {
 public:
  Listener() = default;
  Listener(Listener&& o) noexcept : fd_(o.fd_), port_(o.port_) { o.fd_ = -1; }
  Listener& operator=(Listener&& o) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Binds 127.0.0.1:port (0 = kernel-assigned ephemeral port) and
  /// listens. port() reports the actual port either way.
  static std::optional<Listener> bind_local(std::uint16_t port);

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }

  /// Accepts one connection, waiting up to timeout_ms.
  std::optional<Socket> accept_one(int timeout_ms);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace ssps::net
