#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

namespace ssps::net {
namespace {

using Clock = std::chrono::steady_clock;

int ms_left(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

sockaddr_in local_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

void prepare_fd(int fd) {
  // Children exec ssps_noded; leaked sockets there would hold peers'
  // connections half-open past their owner's death.
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return true;
    if (r == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Socket> Socket::connect_local(std::uint16_t port, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  const sockaddr_in addr = local_addr(port);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return std::nullopt;
    prepare_fd(fd);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return Socket(fd);
    }
    ::close(fd);
    if (ms_left(deadline) == 0) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

bool Socket::send_all(std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

int Socket::recv_into(FrameAssembler& into, int timeout_ms) {
  if (!wait_readable(fd_, timeout_ms)) return -1;
  std::uint8_t chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      into.feed({chunk, static_cast<std::size_t>(n)});
      return static_cast<int>(n);
    }
    if (n == 0) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

std::optional<std::vector<std::uint8_t>> Socket::read_frame(FrameAssembler& from,
                                                            int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (auto frame = from.next()) return frame;
    if (from.failed()) return std::nullopt;
    const int left = ms_left(deadline);
    if (left == 0) return std::nullopt;
    const int n = recv_into(from, left);
    if (n <= 0) return std::nullopt;
  }
}

Listener& Listener::operator=(Listener&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    port_ = o.port_;
    o.fd_ = -1;
  }
  return *this;
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<Listener> Listener::bind_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = local_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  Listener out;
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

std::optional<Socket> Listener::accept_one(int timeout_ms) {
  if (!wait_readable(fd_, timeout_ms)) return std::nullopt;
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      prepare_fd(fd);
      return Socket(fd);
    }
    if (errno != EINTR) return std::nullopt;
  }
}

}  // namespace ssps::net
