// Versioned connection handshake: each side opens with a wire-codec
// Hello frame (protocol version + the node/shard id it claims). A peer
// speaking another protocol version decodes to a structured
// DecodeStatus::kVersionMismatch and the connection is refused — two
// incompatible builds must part ways at byte one, not diverge mid-run.
#pragma once

#include <cstdint>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "sim/types.hpp"
#include "wire/codec.hpp"

namespace ssps::net {

/// Sends a Hello carrying this side's protocol version and `node`.
bool send_hello(Socket& sock, sim::NodeId node);

struct HelloResult {
  bool ok = false;
  /// Why the handshake failed (kVersionMismatch for a peer from another
  /// build; kTruncated for EOF/timeout; kBadPayload for a non-Hello
  /// opening frame).
  wire::DecodeStatus status = wire::DecodeStatus::kOk;
  /// The peer's claimed node/shard id (valid when ok).
  sim::NodeId node;
};

/// Reads the peer's opening frame and requires it to be a valid,
/// version-matching Hello.
HelloResult expect_hello(Socket& sock, FrameAssembler& stream, int timeout_ms);

}  // namespace ssps::net
