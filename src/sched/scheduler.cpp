#include "sched/scheduler.hpp"

#include "sim/network.hpp"

namespace ssps::sched {

void Scheduler::sample(sim::Network& net, std::size_t delivered) {
  // Sample after the unit barrier: any parallel phase is over, so
  // pending_ and the alive count are stable and every serialized field is
  // a pure function of the simulated state (worker-count-invariant).
  if (net.round_probe_ != nullptr) net.sample_round_probe(delivered);
}

}  // namespace ssps::sched
