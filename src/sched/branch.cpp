#include "sched/branch.hpp"

namespace ssps::sched {

std::size_t BranchScheduler::advance(sim::Network& net) {
  const std::size_t batch = prime(net);
  const std::size_t delivered =
      net.deliver_grouped_range(0, batch, net.main_ctx_);
  barrier(net);
  return delivered;
}

}  // namespace ssps::sched
