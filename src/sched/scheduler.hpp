// Execution seam of the simulated network.
//
// sim::Network::run_unit() delegates to the installed Scheduler, which
// executes one *schedule unit* — a synchronous round, a timed interval, or
// a single asynchronous step — through the Network's phase helpers
// (round_begin / deliver_grouped_range / timeout_sweep / round_end, or
// step / timed_interval). All four execution modes (serial, parallel,
// async, timed) sit behind this one virtual seam; front-ends like the
// ScenarioRunner never special-case a mode again.
//
// The contract every implementation must honor: for a fixed (seed, call
// sequence), the delivery trace — which message reaches which node in
// which order, and every metrics counter — is bit-identical across all
// schedulers of the same unit and all worker counts. SerialScheduler is
// the round reference; ParallelScheduler reproduces it from sharded worker
// lanes (see parallel.hpp for why that equality holds by construction),
// TimedScheduler's default profile reproduces it through the virtual
// clock, and BranchScheduler (branch.hpp) exposes the explicit branch
// point inside a round that the model checker (src/mc) drives.
#pragma once

#include <cstddef>
#include <string_view>

namespace ssps::sim {
class Network;
}  // namespace ssps::sim

namespace ssps::sched {

class Scheduler {
 public:
  /// What one advance() call executes — and therefore the unit every
  /// budget, duration and latency figure is denominated in while this
  /// scheduler is installed.
  enum class Unit {
    kRound,     ///< one synchronous round
    kInterval,  ///< one virtual-clock interval (timed mode; = 1 round)
    kStep,      ///< one asynchronous step (a single delivery or Timeout)
  };

  virtual ~Scheduler() = default;

  /// Executes one schedule unit against `net`; returns the number of
  /// messages delivered by it.
  virtual std::size_t advance(sim::Network& net) = 0;

  /// The unit advance() executes.
  virtual Unit unit() const { return Unit::kRound; }

  /// Telemetry hook, called by Network::run_unit after every advance (the
  /// probe attach-point is on the Network). The default samples the
  /// attached RoundProbe once per unit — correct for round-grained
  /// schedulers; the async scheduler overrides it to sample window
  /// counters every AsyncConfig::probe_stride steps instead.
  virtual void sample(sim::Network& net, std::size_t delivered);

  /// How many units a convergence wait (Network::run_until) batches
  /// between predicate probes. 1 for round-grained schedulers (a round is
  /// already a batch of work); the async scheduler returns ~one action per
  /// alive node so the probe isn't priced once per single delivery.
  virtual std::size_t settle_stride(const sim::Network& net) const {
    (void)net;
    return 1;
  }

  /// Folds any per-worker metrics shards into net's main Metrics (a
  /// no-op for schedulers without shards). Network::metrics() calls this
  /// before handing the counters to any reader.
  virtual void flush_metrics(sim::Network& net) { (void)net; }

  /// Called when the Network replaces this scheduler mid-run. The
  /// instance stays alive — its message arenas may still own in-flight
  /// envelopes — but will never execute another unit, so
  /// implementations release everything else (the parallel scheduler
  /// joins its worker threads here).
  virtual void retire() {}

  /// Worker count (1 for every scheduler but the parallel one).
  virtual unsigned threads() const = 0;

  /// Display name for reports and diagnostics.
  virtual std::string_view name() const = 0;

  /// Bytes reserved by scheduler-owned message arenas (worker pools).
  virtual std::size_t reserved_bytes() const { return 0; }
};

}  // namespace ssps::sched
