// Round-scheduler seam of the simulated network.
//
// sim::Network::run_round() delegates to the installed Scheduler, which
// executes one synchronous round through the Network's phase helpers
// (round_begin / deliver_grouped_range / timeout_sweep / round_end). The
// contract every implementation must honor: for a fixed (seed, call
// sequence), the delivery trace — which message reaches which node in
// which order, and every metrics counter — is bit-identical across all
// schedulers and worker counts. SerialScheduler is the reference;
// ParallelScheduler reproduces it from sharded worker lanes (see
// parallel.hpp for why that equality holds by construction).
#pragma once

#include <cstddef>
#include <string_view>

namespace ssps::sim {
class Network;
}  // namespace ssps::sim

namespace ssps::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Executes one synchronous round against `net`; returns the number of
  /// messages delivered.
  virtual std::size_t run_round(sim::Network& net) = 0;

  /// Folds any per-worker metrics shards into net's main Metrics (a
  /// no-op for schedulers without shards). Network::metrics() calls this
  /// before handing the counters to any reader.
  virtual void flush_metrics(sim::Network& net) { (void)net; }

  /// Called when the Network replaces this scheduler mid-run. The
  /// instance stays alive — its message arenas may still own in-flight
  /// envelopes — but will never execute another round, so
  /// implementations release everything else (the parallel scheduler
  /// joins its worker threads here).
  virtual void retire() {}

  /// Worker count (1 for the serial scheduler).
  virtual unsigned threads() const = 0;

  /// Display name for reports and diagnostics.
  virtual std::string_view name() const = 0;

  /// Bytes reserved by scheduler-owned message arenas (worker pools).
  virtual std::size_t reserved_bytes() const { return 0; }
};

}  // namespace ssps::sched
