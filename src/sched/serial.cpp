#include "sched/serial.hpp"

#include "sim/network.hpp"

namespace ssps::sched {

std::size_t SerialScheduler::advance(sim::Network& net) {
  const std::size_t batch = net.round_begin();
  const std::size_t delivered =
      net.deliver_grouped_range(0, batch, net.main_ctx_);
  net.timeout_sweep();
  net.round_end();
  return delivered;
}

}  // namespace ssps::sched
