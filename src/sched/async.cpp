#include "sched/async.hpp"

#include <algorithm>

#include "sim/network.hpp"

namespace ssps::sched {

std::size_t AsyncScheduler::advance(sim::Network& net) { return net.step(); }

void AsyncScheduler::sample(sim::Network& net, std::size_t delivered) {
  (void)delivered;  // accumulated in the window counters by step()
  if (net.round_probe_ != nullptr && net.async_cfg_.probe_stride > 0 &&
      net.step_ % net.async_cfg_.probe_stride == 0) {
    net.sample_async_probe();
  }
}

std::size_t AsyncScheduler::settle_stride(const sim::Network& net) const {
  return std::max<std::size_t>(net.alive_count(), 1);
}

}  // namespace ssps::sched
