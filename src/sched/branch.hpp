// The branchable round scheduler: the explicit branch point the model
// checker (src/mc) drives.
//
// A synchronous round has exactly one source of nondeterminism the
// protocol can observe: the order in which each node's channel is
// drained. (Cross-target order within a round is unobservable — nodes
// interact only through messages that arrive next round — which is the
// same argument that justifies grouped delivery in the serial core and
// sharded delivery in the parallel scheduler.) BranchScheduler exposes
// that choice: prime() swaps the in-flight buffer into the grouped batch
// and hands out its size, then the driver delivers (or discards) grouped
// slots one at a time in any order it likes, and barrier() finishes the
// round. The serial round is the special case "deliver 0..batch in
// order", which is what advance() runs — so a BranchScheduler-driven
// network replays mainline traces bit-for-bit when the driver picks the
// serial order.
#pragma once

#include "sched/scheduler.hpp"
#include "sim/network.hpp"

namespace ssps::sched {

class BranchScheduler final : public Scheduler {
 public:
  // ---- Branch-point API (driven by mc::Explorer) ----------------------

  /// Starts a round: advances the step clock, swaps the in-flight buffer
  /// out as this round's batch (seeded shuffle + group by target), and
  /// returns the batch size. Grouped slots [0, batch) are then pending
  /// delivery; scatter_offsets()[v] bounds target id v's group.
  std::size_t prime(sim::Network& net) { return net.round_begin(); }

  /// The i-th grouped slot of the primed batch. Valid until barrier();
  /// reading a slot already passed to deliver()/discard() is invalid (its
  /// message handle has been consumed).
  const sim::Envelope& slot(const sim::Network& net, std::size_t i) const {
    return net.grouped_[i];
  }

  /// END offset of target id v's group in the primed batch (offset 0 is
  /// implicit), exactly the shard-boundary table the parallel scheduler
  /// slices with.
  std::uint32_t group_end(const sim::Network& net, std::uint64_t v) const {
    return net.scatter_offsets_[static_cast<std::size_t>(v)];
  }

  /// Delivers grouped slot i (returns 1, or 0 if the target crashed).
  std::size_t deliver(sim::Network& net, std::size_t i) {
    return net.deliver_grouped_range(i, i + 1, net.main_ctx_);
  }

  /// Discards grouped slot i undelivered — the mutation hook for seeded
  /// protocol bugs (a transport that silently drops a message class).
  /// Mirrors the crashed-target path: the message invokes no action and
  /// its pool slot is reclaimed.
  void discard(sim::Network& net, std::size_t i) {
    const sim::Envelope& env = net.grouped_[i];
    net.trace_forget(env.msg);
    env.pool->destroy(env.msg, env.handle);
  }

  /// Finishes the round once every slot has been delivered or discarded:
  /// fires the id-order timeout sweep and advances the round clock.
  void barrier(sim::Network& net) {
    net.timeout_sweep();
    net.round_end();
  }

  /// Messages sent during the current round (the next round's batch), in
  /// canonical send order — the channel contents the canonical state
  /// encoding serializes.
  const std::vector<sim::Envelope>& pending(const sim::Network& net) const {
    return net.pending_;
  }

  // ---- Scheduler seam --------------------------------------------------

  /// One full round in the serial order (prime, deliver all, barrier).
  std::size_t advance(sim::Network& net) override;
  unsigned threads() const override { return 1; }
  std::string_view name() const override { return "branch"; }
};

}  // namespace ssps::sched
