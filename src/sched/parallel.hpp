// Deterministic parallel round scheduler: sharded in-flight lanes over a
// persistent worker pool, bit-identical to the single-threaded core.
//
// Why the trace equality holds by construction:
//
//   1. Shuffle + group stay sequential and untouched. Each round begins
//      exactly as the serial scheduler's does: the merged in-flight
//      buffer (whose order reproduces the serial send order, see 3) is
//      swapped out, shuffled with the same seeded stream, and grouped by
//      target with the same stable counting sort. The batch handed to
//      the delivery phase is therefore byte-for-byte the serial batch.
//   2. Sharded delivery is unobservable. The grouped batch is sliced
//      into contiguous target-id ranges, one per worker. Within a slice
//      a worker delivers in the serial in-slice order; across slices,
//      interleaving cannot be observed by any node, because a node's
//      actions touch only that node's state and per-node RNG stream, and
//      everything sent this round arrives next round (the same argument
//      that already justifies grouped delivery and the id-order timeout
//      sweep in the serial core).
//   3. The merge reproduces the serial send order. A worker's sends
//      append to its private lane (through its SendContext — no atomics
//      anywhere on the send path). Serial emission order is "grouped
//      batch processed front to back"; since the shards partition the
//      grouped batch contiguously in target-id order, concatenating the
//      lanes in worker order at the barrier is exactly that order. The
//      sequential id-order timeout sweep then appends its sends after
//      all lanes, as in the serial round. The next round's shuffle
//      consumes the same buffer contents in the same order with the same
//      RNG stream — so the rounds stay locked together forever.
//   4. Everything else is commutative bookkeeping. Per-worker Metrics
//      shards hold integer counters folded (in worker-id order) into the
//      main Metrics when read; per-worker MessagePools keep allocation
//      single-threaded, with cross-pool frees deferred to per-worker
//      lanes and repatriated at the round barrier. Neither pool handles
//      nor metrics label ids are observable in traces or reports.
//
// Consequently the delivery trace and the JSON report of a T-thread run
// are byte-identical to the 1-thread run for every scenario and seed —
// CI enforces this with twin-run cmp across thread counts.
//
// Constraints: topology mutations (spawn/crash/inject) must happen
// between rounds (Network asserts this during the parallel phase); the
// asynchronous step() scheduler is unaffected and stays serial.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/scheduler.hpp"
#include "sim/message_pool.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace ssps::sched {

class ParallelScheduler final : public Scheduler {
 public:
  /// Spawns `threads - 1` pool threads (the calling thread acts as
  /// worker 0 during each round's delivery phase).
  explicit ParallelScheduler(unsigned threads);
  ~ParallelScheduler() override;

  std::size_t advance(sim::Network& net) override;
  void flush_metrics(sim::Network& net) override;
  /// Joins the pool threads (the per-worker arenas stay alive under any
  /// in-flight envelopes). A retired scheduler must not advance again.
  void retire() override { stop_workers(); }
  unsigned threads() const override {
    return static_cast<unsigned>(workers_.size());
  }
  std::string_view name() const override { return "parallel"; }
  std::size_t reserved_bytes() const override;

 private:
  /// One worker's private world: message arena, metrics shard, latency
  /// shard, in-flight lane, deferred-free lane, and the SendContext tying
  /// them together. Persistent across rounds so slab freelists keep
  /// recycling.
  struct Worker {
    sim::MessagePool pool;
    sim::Metrics metrics;
    telemetry::LatencyTracker latency;
    std::vector<sim::Envelope> lane;
    sim::FreeLane free_lane;
    sim::SendContext ctx;
    std::size_t begin = 0;  // this round's slice of the grouped batch
    std::size_t end = 0;
    std::size_t delivered = 0;
  };

  void worker_main(std::size_t index);
  /// Delivers the worker's slice with TLS routed at its private context.
  void run_slice(Worker& w);
  /// Signals shutdown and joins the pool threads (idempotent).
  void stop_workers();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped once per delivery phase
  std::size_t running_ = 0;       // pool workers still in the phase
  bool shutdown_ = false;
  sim::Network* net_ = nullptr;  // round-scoped; guarded by the barrier
};

}  // namespace ssps::sched
