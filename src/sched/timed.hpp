// The event-driven virtual-clock scheduler (timed mode).
#pragma once

#include "sched/scheduler.hpp"

namespace ssps::sched {

/// Runs one virtual-clock interval (sim::Network::timed_interval) per
/// advance call on the calling thread: pops every event due by the
/// interval deadline off the Network's delivery-time heap, delivers, and
/// routes the resulting sends through the per-link latency/fault model
/// (sim/link.hpp). Single-threaded by contract — link routing mutates the
/// shared event heap and the fault stream. With the default TimedConfig
/// (constant one-interval latency, zero faults) the delivery trace is
/// bit-identical to SerialScheduler's.
class TimedScheduler final : public Scheduler {
 public:
  std::size_t advance(sim::Network& net) override;
  Unit unit() const override { return Unit::kInterval; }
  unsigned threads() const override { return 1; }
  std::string_view name() const override { return "timed"; }
};

}  // namespace ssps::sched
