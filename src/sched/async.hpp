// The randomized asynchronous scheduler behind the unit seam.
#pragma once

#include "sched/scheduler.hpp"

namespace ssps::sched {

/// Executes one randomized asynchronous step (sim::Network::step) per
/// advance call: exactly one enabled action — a delivery or a Timeout —
/// subject to the fairness bounds in sim::AsyncConfig. Folding the step
/// loop behind the seam is what lets front-ends run all four execution
/// modes through run_unit / run_until without special-casing async.
class AsyncScheduler final : public Scheduler {
 public:
  std::size_t advance(sim::Network& net) override;
  Unit unit() const override { return Unit::kStep; }
  /// Samples the window counters whenever the step clock hits a multiple
  /// of AsyncConfig::probe_stride — the same chunk-invariant sample points
  /// the pre-seam run_steps loop produced.
  void sample(sim::Network& net, std::size_t delivered) override;
  /// ~One action per alive node between convergence probes, so a
  /// run_until budget stays comparable to a round budget.
  std::size_t settle_stride(const sim::Network& net) const override;
  unsigned threads() const override { return 1; }
  std::string_view name() const override { return "async"; }
};

}  // namespace ssps::sched
