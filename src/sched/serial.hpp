// The single-threaded round scheduler (the pre-seam run_round path).
#pragma once

#include "sched/scheduler.hpp"

namespace ssps::sched {

/// Runs every round phase on the calling thread, accounting through the
/// Network's own SendContext. This is the reference implementation of the
/// scheduler contract: ParallelScheduler must reproduce its delivery
/// trace bit-for-bit.
class SerialScheduler final : public Scheduler {
 public:
  std::size_t advance(sim::Network& net) override;
  unsigned threads() const override { return 1; }
  std::string_view name() const override { return "serial"; }
};

}  // namespace ssps::sched
