// HookScheduler: a transparent Scheduler wrapper that invokes a callback
// after every schedule unit of an inner scheduler.
//
// The multi-process deployment (src/proc) builds its round barrier on
// this seam: every process runs a full deterministic replica of the
// scenario, and the hook — firing at the unit boundary, after round_end
// but before Network::run_unit's snapshot/sample steps of the NEXT unit —
// is where a replica exchanges barrier frames, verifies relayed message
// bytes and applies lockstep restore events. Because the wrapper forwards
// every other virtual (unit shape, sampling, settle stride, metrics
// flush), installing it changes nothing about the execution the inner
// scheduler produces: same delivery order, same probe samples, same
// report bytes.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>

#include "sched/scheduler.hpp"

namespace ssps::sched {

class HookScheduler final : public Scheduler {
 public:
  /// Called after each completed unit with the 1-based count of units this
  /// wrapper has executed and the number of messages the unit delivered.
  using PostUnit =
      std::function<void(sim::Network& net, std::size_t unit, std::size_t delivered)>;

  HookScheduler(std::unique_ptr<Scheduler> inner, PostUnit post_unit)
      : inner_(std::move(inner)), post_unit_(std::move(post_unit)) {}

  std::size_t advance(sim::Network& net) override {
    const std::size_t delivered = inner_->advance(net);
    ++units_;
    if (post_unit_) post_unit_(net, units_, delivered);
    return delivered;
  }

  Unit unit() const override { return inner_->unit(); }
  void sample(sim::Network& net, std::size_t delivered) override {
    inner_->sample(net, delivered);
  }
  std::size_t settle_stride(const sim::Network& net) const override {
    return inner_->settle_stride(net);
  }
  void flush_metrics(sim::Network& net) override { inner_->flush_metrics(net); }
  void retire() override { inner_->retire(); }
  unsigned threads() const override { return inner_->threads(); }
  std::string_view name() const override { return inner_->name(); }
  std::size_t reserved_bytes() const override { return inner_->reserved_bytes(); }

  /// Units executed so far (the barrier round counter).
  std::size_t units() const { return units_; }

 private:
  std::unique_ptr<Scheduler> inner_;
  PostUnit post_unit_;
  std::size_t units_ = 0;
};

}  // namespace ssps::sched
