#include "sched/parallel.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ssps::sched {

ParallelScheduler::ParallelScheduler(unsigned threads) {
  SSPS_ASSERT_MSG(threads >= 1, "ParallelScheduler: need at least one worker");
  workers_.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->ctx.lane = &worker->lane;
    worker->ctx.metrics = &worker->metrics;
    worker->ctx.pool = &worker->pool;
    worker->ctx.latency = &worker->latency;
    worker->free_lane.own = &worker->pool;
    workers_.push_back(std::move(worker));
  }
  threads_.reserve(threads - 1);
  for (unsigned w = 1; w < threads; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelScheduler::~ParallelScheduler() { stop_workers(); }

void ParallelScheduler::stop_workers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void ParallelScheduler::run_slice(Worker& w) {
  sim::detail::tls_send_ctx = &w.ctx;
  sim::detail::tls_free_lane = &w.free_lane;
  w.delivered = net_->deliver_grouped_range(w.begin, w.end, w.ctx);
  sim::detail::tls_send_ctx = nullptr;
  sim::detail::tls_free_lane = nullptr;
}

void ParallelScheduler::worker_main(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    run_slice(*workers_[index]);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--running_ == 0) done_cv_.notify_one();
    }
  }
}

std::size_t ParallelScheduler::advance(sim::Network& net) {
  SSPS_ASSERT_MSG(!shutdown_, "advance: scheduler was retired");
  const std::size_t batch = net.round_begin();
  const std::size_t worker_count = workers_.size();

  // Static shard partition: contiguous slot-id ranges of equal width.
  // grouped_ is sorted by target id, so shard w's work is the contiguous
  // slice [boundary(w), boundary(w + 1)), read off the counting-sort
  // offsets (after round_begin, scatter_offsets_[v] is the END of id v's
  // group). Workers past the population get an empty slice. The
  // partition never influences the trace — only which thread performs
  // which (unobservable, see parallel.hpp) slice of the work.
  const std::size_t slots = net.slots_.size();
  const std::size_t chunk = (slots + worker_count - 1) / worker_count;
  auto boundary = [&](std::size_t shard) {
    const std::size_t hi = std::min(shard * chunk, slots);
    return hi == 0 ? std::size_t{0}
                   : static_cast<std::size_t>(net.scatter_offsets_[hi]);
  };
  for (std::size_t w = 0; w < worker_count; ++w) {
    workers_[w]->begin = boundary(w);
    workers_[w]->end = boundary(w + 1);
    workers_[w]->delivered = 0;
  }
  SSPS_ASSERT(boundary(worker_count) == batch);

  // Concurrent delivery phase. The mutex hand-offs publish net_ and the
  // slice bounds to the workers, and every worker-side write (node
  // state, lanes, shards) back to this thread — which is the round
  // barrier the incremental probes' plain (non-atomic) version counters
  // rely on.
  // Quiescent rounds (empty batch) skip the wake/barrier handshake —
  // every slice is empty, so sharding nothing is trace-safe and drain
  // loops don't pay N-1 futile wakeups per round.
  const bool fan_out = worker_count > 1 && batch > 0;
  net.in_parallel_phase_ = true;
  net_ = &net;
  if (fan_out) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++generation_;
      running_ = worker_count - 1;
    }
    work_cv_.notify_all();
  }
  run_slice(*workers_[0]);  // the calling thread is worker 0
  if (fan_out) {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return running_ == 0; });
  }
  net_ = nullptr;
  net.in_parallel_phase_ = false;

  // Deterministic merge, in worker order: repatriate deferred frees to
  // the pools that own them, splice each lane onto the main in-flight
  // buffer — reproducing the serial emission order, since the shards
  // partition the grouped batch contiguously in target-id order — and
  // fold the swallowed counters. The sequential timeout sweep then
  // appends its sends after every lane, exactly as the serial round
  // does.
  std::size_t delivered = 0;
  for (std::unique_ptr<Worker>& wp : workers_) {
    Worker& w = *wp;
    for (const sim::DeferredFree& f : w.free_lane.deferred) {
      f.pool->reclaim(f.handle);
    }
    w.free_lane.deferred.clear();
    net.pending_.insert(net.pending_.end(), w.lane.begin(), w.lane.end());
    w.lane.clear();
    net.main_ctx_.swallowed_to_dead += w.ctx.swallowed_to_dead;
    w.ctx.swallowed_to_dead = 0;
    delivered += w.delivered;
  }
  net.timeout_sweep();
  net.round_end();
  return delivered;
}

void ParallelScheduler::flush_metrics(sim::Network& net) {
  for (std::unique_ptr<Worker>& wp : workers_) {
    wp->metrics.fold_into(net.metrics_);
    wp->metrics.reset();
    wp->latency.fold_into(net.latency_);
    wp->latency.reset();
  }
}

std::size_t ParallelScheduler::reserved_bytes() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Worker>& wp : workers_) {
    total += wp->pool.reserved_bytes();
  }
  return total;
}

}  // namespace ssps::sched
