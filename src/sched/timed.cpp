#include "sched/timed.hpp"

#include "sim/network.hpp"

namespace ssps::sched {

std::size_t TimedScheduler::advance(sim::Network& net) {
  return net.timed_interval();
}

}  // namespace ssps::sched
