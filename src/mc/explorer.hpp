// Exhaustive small-n interleaving explorer.
//
// From one scrambled root state, the explorer enumerates every delivery
// interleaving the round model admits (the Executor's branch point, with
// its two sound reductions) and certifies that EVERY schedule reaches a
// legal state within the round bound — a qualitatively stronger statement
// than any seed sweep, which samples one schedule per seed.
//
// Search shape: depth-first over choice traces, with the system state
// re-established by replay from the cheap root on every backtrack
// (stateless model checking). Boundary states (between rounds) are
// hash-deduped:
//   - a state already proven (black) is skipped — sound because the
//     search aborts on the first counterexample, so a black state's
//     entire subtree is known to reach legality regardless of the depth
//     it was first expanded at (the round bound is a search bound, not
//     part of the property);
//   - re-reaching a state on the current DFS stack (grey) is a genuine
//     livelock: a cycle of rounds that never passes through a legal
//     state is an infinite fair execution violating convergence.
// Mid-round positions are memoized the same way (the round memo): two
// delivery orders whose executed prefixes commute land on the same
// canonical position, so the factorial tree of per-target permutations
// collapses toward the subset lattice — without this the checker drowns
// at n = 3 where boundary dedup alone leaves k! within-round orderings.
// Failing schedules are reported as replayable choice traces
// (counterexample.hpp serializes them).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_set>

#include "mc/executor.hpp"

namespace ssps::mc {

struct Stats {
  /// Unique non-legal boundary states expanded.
  std::size_t visited = 0;
  /// Boundary revisits answered by the visited set.
  std::size_t deduped = 0;
  /// Branch choices removed by the commuting-delivery reduction.
  std::size_t por_pruned = 0;
  /// Mid-round positions answered by the round memo: delivery orders that
  /// converged onto an already-proven (state, remaining-messages) pair.
  std::size_t memo_hits = 0;
  /// Legal boundary states reached (schedule endpoints).
  std::size_t goal_states = 0;
  /// Deepest boundary reached, in rounds from the root.
  std::size_t max_depth = 0;
};

struct Counterexample {
  enum class Kind {
    kDepthBound,  ///< a schedule ran max_rounds rounds without legality
    kLivelock,    ///< a schedule revisited a state on its own path
  };
  Kind kind = Kind::kDepthBound;
  /// Replayable schedule: Executor::replay(trace) re-establishes the
  /// violating end state (modulo one trailing prime, which no oracle
  /// predicate observes).
  Trace trace;
  /// Oracle summary at the end state.
  std::string violation;
  /// Rounds executed by the failing schedule.
  std::size_t rounds = 0;
};

struct Certificate {
  /// True when every schedule from the root reaches a legal state within
  /// the bound.
  bool certified = false;
  Stats stats;
  std::optional<Counterexample> counterexample;
};

class Explorer {
 public:
  explicit Explorer(const Executor::Options& options);

  /// Runs the exhaustive search (aborts on the first counterexample).
  Certificate run();

  /// One uniformly random schedule from the same root: the sampling
  /// baseline the differential test pins the exhaustive result against.
  /// Returns rounds-to-legal, or nullopt when the bound was hit.
  static std::optional<std::size_t> random_walk(
      const Executor::Options& options, std::uint64_t walk_seed);

 private:
  enum class Result { kAllLegal, kCounterexample };

  /// Expands the boundary state the executor currently sits at.
  Result explore_boundary(std::size_t depth);
  /// Enumerates the primed round's remaining interleavings.
  Result explore_round(std::size_t depth);
  void record_counterexample(Counterexample::Kind kind, std::size_t depth);

  Executor exec_;
  std::size_t max_rounds_;
  Trace trace_;
  std::unordered_set<StateHash, StateHashOf> visited_;
  std::unordered_set<StateHash, StateHashOf> grey_;
  /// Proven-all-legal mid-round positions (hashes carry a flag byte, so
  /// they can never collide with boundary hashes in visited_/grey_).
  std::unordered_set<StateHash, StateHashOf> round_memo_;
  Certificate out_;
};

}  // namespace ssps::mc
