#include "mc/explorer.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace ssps::mc {

Explorer::Explorer(const Executor::Options& options)
    : exec_(options), max_rounds_(options.max_rounds) {}

Certificate Explorer::run() {
  trace_.clear();
  visited_.clear();
  grey_.clear();
  round_memo_.clear();
  out_ = Certificate{};
  const Result r = explore_boundary(0);
  out_.certified = r == Result::kAllLegal;
  return out_;
}

void Explorer::record_counterexample(Counterexample::Kind kind,
                                     std::size_t depth) {
  Counterexample ce;
  ce.kind = kind;
  ce.trace = trace_;
  ce.violation = exec_.check().summary();
  ce.rounds = depth;
  out_.counterexample = std::move(ce);
}

Explorer::Result Explorer::explore_boundary(std::size_t depth) {
  out_.stats.max_depth = std::max(out_.stats.max_depth, depth);
  if (exec_.check().ok()) {
    // Legal boundary: this schedule converged. The paper's closure
    // property (legal states only step to legal states) makes it a true
    // endpoint — nothing below it needs exploring.
    ++out_.stats.goal_states;
    return Result::kAllLegal;
  }
  if (depth >= max_rounds_) {
    record_counterexample(Counterexample::Kind::kDepthBound, depth);
    return Result::kCounterexample;
  }
  const StateHash h = exec_.state_hash();
  if (grey_.contains(h)) {
    // The schedule walked back into a state on its own path without ever
    // passing a legal state: a genuine livelock cycle.
    record_counterexample(Counterexample::Kind::kLivelock, depth);
    return Result::kCounterexample;
  }
  if (visited_.contains(h)) {
    ++out_.stats.deduped;
    return Result::kAllLegal;
  }
  ++out_.stats.visited;
  grey_.insert(h);
  exec_.prime();
  const Result r = explore_round(depth);
  grey_.erase(h);
  // Only proven states turn black; on a counterexample the search aborts
  // anyway, so nothing half-explored is ever consulted.
  if (r == Result::kAllLegal) visited_.insert(h);
  return r;
}

Explorer::Result Explorer::explore_round(std::size_t depth) {
  const Enabled en = exec_.enabled();
  out_.stats.por_pruned += en.pruned;
  if (en.slots.empty()) {
    exec_.barrier();
    trace_.push_back(kAdvance);
    const Result r = explore_boundary(depth + 1);
    if (r == Result::kCounterexample) return r;
    trace_.pop_back();
    return Result::kAllLegal;
  }
  // Round memo: two delivery orders whose prefixes commute reach the same
  // canonical position (node states + RNG streams + remaining multiset),
  // and the branch point ahead is a pure function of that position — so a
  // position once proven all-legal can answer every later arrival. This
  // collapses the k! orderings of commuting deliveries toward the 2^k
  // subsets actually distinguishable. Same proven-subtree caveat as the
  // boundary black set (see the file header).
  const StateHash position = exec_.state_hash();
  if (round_memo_.contains(position)) {
    ++out_.stats.memo_hits;
    return Result::kAllLegal;
  }
  for (std::size_t i = 0; i < en.slots.size(); ++i) {
    // The executor already sits at this branch point for the first
    // choice; later siblings re-establish it by replaying the prefix.
    if (i > 0) exec_.replay(trace_);
    exec_.fire(en.slots[i]);
    trace_.push_back(en.slots[i]);
    const Result r = explore_round(depth);
    if (r == Result::kCounterexample) return r;
    trace_.pop_back();
  }
  round_memo_.insert(position);
  return Result::kAllLegal;
}

std::optional<std::size_t> Explorer::random_walk(
    const Executor::Options& options, std::uint64_t walk_seed) {
  Executor exec(options);
  ssps::Rng rng(walk_seed);
  if (exec.check().ok()) return 0;
  exec.prime();
  for (;;) {
    const Enabled en = exec.enabled();
    if (en.slots.empty()) {
      exec.barrier();
      if (exec.check().ok()) return exec.rounds();
      if (exec.rounds() >= options.max_rounds) return std::nullopt;
      exec.prime();
      continue;
    }
    exec.fire(en.slots[rng.pick_index(en.slots)]);
  }
}

}  // namespace ssps::mc
