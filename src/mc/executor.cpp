#include "mc/executor.hpp"

#include <algorithm>
#include <span>

#include "common/assert.hpp"
#include "common/encode.hpp"
#include "pubsub/hash.hpp"

namespace ssps::mc {

Executor::Executor(const Options& options) : opt_(options) { reset(); }

void Executor::reset() {
  // Rebuild instead of snapshot-restore: construct + spawn + scramble is a
  // few microseconds at model-checking sizes, and rebuilding from the seed
  // is trivially bit-deterministic (the Network seeds every per-node RNG
  // stream by split order, and the injector owns its own stream).
  sys_ = std::make_unique<pubsub::PubSubSystem>(
      core::SkipRingSystem::Options{.seed = opt_.seed, .fd_delay = 0},
      pubsub::PubSubConfig{});
  sys_->add_pubsub_subscribers(opt_.nodes);
  auto branch = std::make_unique<sched::BranchScheduler>();
  branch_ = branch.get();
  sys_->net().set_scheduler(std::move(branch));
  oracle::ArbitraryStateInjector injector(opt_.scramble);
  injector.scramble(*sys_);
  primed_ = false;
  batch_ = 0;
  fired_ = 0;
  rounds_ = 0;
  consumed_.clear();
}

void Executor::prime() {
  SSPS_ASSERT_MSG(!primed_, "prime: round already open");
  batch_ = branch_->prime(sys_->net());
  consumed_.assign(batch_, false);
  fired_ = 0;
  primed_ = true;
}

void Executor::barrier() {
  SSPS_ASSERT_MSG(primed_ && drained(), "barrier: round not drained");
  branch_->barrier(sys_->net());
  primed_ = false;
  ++rounds_;
}

Enabled Executor::enabled() {
  SSPS_ASSERT_MSG(primed_, "enabled: prime a round first");
  Enabled out;
  const sim::Network& net = sys_->net();
  std::size_t first = 0;
  while (first < batch_ && consumed_[first]) ++first;
  if (first == batch_) return out;  // drained
  const sim::NodeId target = branch_->slot(net, first).to;
  std::vector<std::vector<std::uint8_t>> seen;
  for (std::size_t i = first; i < batch_; ++i) {
    if (consumed_[i]) continue;
    const sim::Envelope& env = branch_->slot(net, i);
    if (env.to != target) break;  // groups are contiguous in target order
    std::vector<std::uint8_t> key = encode_envelope(env);
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      ++out.pruned;
      continue;
    }
    seen.push_back(std::move(key));
    out.slots.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

void Executor::fire(std::uint32_t slot) {
  SSPS_ASSERT_MSG(primed_ && slot < batch_ && !consumed_[slot],
                  "fire: slot out of range or already fired");
  sim::Network& net = sys_->net();
  const sim::Envelope& env = branch_->slot(net, slot);
  if (!opt_.drop_message_name.empty() &&
      env.msg->name() == opt_.drop_message_name) {
    branch_->discard(net, slot);
  } else {
    branch_->deliver(net, slot);
  }
  consumed_[slot] = true;
  ++fired_;
}

void Executor::replay(const Trace& trace) {
  reset();
  prime();
  for (std::uint32_t choice : trace) {
    if (choice == kAdvance) {
      advance();
    } else {
      fire(choice);
    }
  }
}

std::vector<std::uint8_t> Executor::encode_envelope(
    const sim::Envelope& env) const {
  common::Encoder enc;
  enc.u64(env.to.value);
  enc.string(env.msg->name());
  const bool encodable = env.msg->encode(enc);
  SSPS_ASSERT_MSG(encodable,
                  "mc: in-flight message class lacks a canonical encoding");
  return enc.buffer();
}

StateHash Executor::state_hash() {
  common::Encoder enc;
  sim::Network& net = sys_->net();
  // Node states in id order (canonical). The per-node and network RNG
  // streams are part of the state: two configurations that agree on every
  // protocol variable but differ in pending randomness can still diverge.
  // The round/step clocks, version counters and derived caches are
  // excluded — none of them feeds back into any protocol decision (the
  // failure detector reads the crash log, which stays empty here: the
  // checker never crashes nodes).
  net.for_each_alive([&](sim::NodeId id, const sim::Node& node) {
    enc.u64(id.value);
    enc.u8(static_cast<std::uint8_t>(node.kind()));
    if (node.kind() == sim::NodeKind::kSupervisor) {
      sys_->supervisor().encode_state(enc);
    } else {
      sys_->subscriber(id).encode_state(enc);
      const pubsub::PatriciaTrie& trie = sys_->pubsub(id).trie();
      enc.u64(trie.size());
      enc.optional(trie.root(), pubsub::msg::encode_summary);
    }
    for (std::uint64_t word : node.rng_state()) enc.u64(word);
  });
  for (std::uint64_t word : net.rng().state()) enc.u64(word);
  // Channel contents as a multiset: per-envelope canonical encodings in
  // sorted byte order. Sound because the explorer tries every delivery
  // order anyway — two states whose channels hold the same messages in
  // different send order have identical futures.
  std::vector<std::vector<std::uint8_t>> messages;
  for (const sim::Envelope& env : branch_->pending(net)) {
    messages.push_back(encode_envelope(env));
  }
  std::sort(messages.begin(), messages.end());
  enc.u64(messages.size());
  for (const auto& message : messages) {
    enc.bytes(message.data(), message.size());
  }
  // Mid-round positions additionally carry the undelivered remainder of
  // the primed batch, also as a sorted multiset: two delivery orders that
  // land on the same node states, RNG streams and remaining messages have
  // identical futures (the branch point only ever offers the lowest-id
  // target's distinct messages, a function of exactly this data), so the
  // explorer's round memo can collapse commuting permutations. The flag
  // byte keeps boundary and mid-round encodings from ever colliding.
  enc.u8(primed_ ? 1 : 0);
  if (primed_) {
    std::vector<std::vector<std::uint8_t>> remaining;
    for (std::size_t i = 0; i < batch_; ++i) {
      if (consumed_[i]) continue;
      remaining.push_back(encode_envelope(branch_->slot(net, i)));
    }
    std::sort(remaining.begin(), remaining.end());
    enc.u64(remaining.size());
    for (const auto& message : remaining) {
      enc.bytes(message.data(), message.size());
    }
  }
  const pubsub::Digest digest = pubsub::Sha256::digest(
      std::span<const std::uint8_t>(enc.buffer().data(), enc.size()));
  StateHash h;
  for (int i = 0; i < 8; ++i) {
    h.hi |= static_cast<std::uint64_t>(digest[i]) << (8 * i);
    h.lo |= static_cast<std::uint64_t>(digest[8 + i]) << (8 * i);
  }
  return h;
}

oracle::OracleReport Executor::check() { return oracle::check_system(*sys_); }

}  // namespace ssps::mc
