#include "mc/counterexample.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

namespace ssps::mc {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Value text following `"key":` — up to the next ',' or '}' (numbers and
/// booleans only; strings are handled separately).
std::optional<std::string> scalar_after(const std::string& text,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t from = at + needle.size();
  std::size_t to = from;
  while (to < text.size() && text[to] != ',' && text[to] != '}' &&
         text[to] != ']') {
    ++to;
  }
  std::string value = text.substr(from, to - from);
  // Trim whitespace.
  while (!value.empty() && (value.front() == ' ' || value.front() == '\n')) {
    value.erase(value.begin());
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\n')) {
    value.pop_back();
  }
  return value;
}

/// Unsigned parse: seeds use the full u64 range (stoll would overflow on
/// anything past INT64_MAX, which real derived scramble seeds hit).
std::optional<std::uint64_t> uint_after(const std::string& text,
                                        const std::string& key) {
  const auto value = scalar_after(text, key);
  if (!value || value->empty()) return std::nullopt;
  try {
    std::size_t used = 0;
    const std::uint64_t parsed = std::stoull(*value, &used);
    if (used != value->size()) return std::nullopt;
    return parsed;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<std::string> string_after(const std::string& text,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nullopt;
  at = text.find('"', at + needle.size());
  if (at == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = at + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      const char n = text[++i];
      out += n == 'n' ? '\n' : n == 't' ? '\t' : n;
    } else if (c == '"') {
      return out;
    } else {
      out += c;
    }
  }
  return std::nullopt;
}

}  // namespace

bool write_counterexample(const std::string& path,
                          const CounterexampleFile& ce) {
  std::ofstream out(path);
  if (!out) return false;
  const Executor::Options& o = ce.options;
  out << "{\n";
  out << "  \"kind\": \"" << escape(ce.kind) << "\",\n";
  out << "  \"seed\": " << o.seed << ",\n";
  out << "  \"nodes\": " << o.nodes << ",\n";
  out << "  \"max_rounds\": " << o.max_rounds << ",\n";
  out << "  \"drop\": \"" << escape(o.drop_message_name) << "\",\n";
  out << "  \"scramble_seed\": " << o.scramble.seed << ",\n";
  out << "  \"label_null_pct\": " << o.scramble.label_null_pct << ",\n";
  out << "  \"label_random_pct\": " << o.scramble.label_random_pct << ",\n";
  out << "  \"edge_null_pct\": " << o.scramble.edge_null_pct << ",\n";
  out << "  \"max_shortcuts\": " << o.scramble.max_shortcuts << ",\n";
  out << "  \"databases\": " << (o.scramble.databases ? "true" : "false")
      << ",\n";
  out << "  \"tries\": " << (o.scramble.tries ? "true" : "false") << ",\n";
  out << "  \"junk_messages\": " << o.scramble.junk_messages << ",\n";
  out << "  \"max_label_len\": " << o.scramble.max_label_len << ",\n";
  out << "  \"violation\": \"" << escape(ce.violation) << "\",\n";
  out << "  \"trace\": [";
  for (std::size_t i = 0; i < ce.trace.size(); ++i) {
    if (i != 0) out << ", ";
    // kAdvance (a round boundary) serializes as -1.
    if (ce.trace[i] == kAdvance) {
      out << -1;
    } else {
      out << ce.trace[i];
    }
  }
  out << "]\n}\n";
  return static_cast<bool>(out);
}

std::optional<CounterexampleFile> read_counterexample(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  CounterexampleFile ce;
  const auto kind = string_after(text, "kind");
  if (!kind) return std::nullopt;
  ce.kind = *kind;
  ce.violation = string_after(text, "violation").value_or("");
  const auto drop = string_after(text, "drop");
  ce.options.drop_message_name = drop.value_or("");

  auto require = [&](const char* key, auto& field) {
    const auto v = uint_after(text, key);
    if (v) field = static_cast<std::remove_reference_t<decltype(field)>>(*v);
    return v.has_value();
  };
  if (!require("seed", ce.options.seed)) return std::nullopt;
  if (!require("nodes", ce.options.nodes)) return std::nullopt;
  if (!require("max_rounds", ce.options.max_rounds)) return std::nullopt;
  if (!require("scramble_seed", ce.options.scramble.seed)) return std::nullopt;
  require("label_null_pct", ce.options.scramble.label_null_pct);
  require("label_random_pct", ce.options.scramble.label_random_pct);
  require("edge_null_pct", ce.options.scramble.edge_null_pct);
  require("max_shortcuts", ce.options.scramble.max_shortcuts);
  require("junk_messages", ce.options.scramble.junk_messages);
  require("max_label_len", ce.options.scramble.max_label_len);
  const auto databases = scalar_after(text, "databases");
  if (databases) ce.options.scramble.databases = *databases == "true";
  const auto tries = scalar_after(text, "tries");
  if (tries) ce.options.scramble.tries = *tries == "true";

  const std::size_t open = text.find("\"trace\":");
  if (open == std::string::npos) return std::nullopt;
  const std::size_t lbrack = text.find('[', open);
  const std::size_t rbrack = text.find(']', open);
  if (lbrack == std::string::npos || rbrack == std::string::npos) {
    return std::nullopt;
  }
  std::stringstream items(text.substr(lbrack + 1, rbrack - lbrack - 1));
  std::string item;
  while (std::getline(items, item, ',')) {
    try {
      const long long v = std::stoll(item);
      ce.trace.push_back(v < 0 ? kAdvance
                                : static_cast<std::uint32_t>(v));
    } catch (...) {
      return std::nullopt;
    }
  }
  return ce;
}

}  // namespace ssps::mc
