// Branch-point executor: a pub-sub deployment the model checker can
// steer, fork and replay.
//
// The executor owns one scrambled small-n PubSubSystem driven through a
// sched::BranchScheduler, and reduces its execution to a deterministic
// function of (options, choice trace):
//
//   - reset() rebuilds the root state from scratch — construct, spawn n
//     subscribers, scramble with the fixed seed. Reconstruction is cheap
//     at model-checking sizes, which is what makes replay-based
//     backtracking (and counterexample replay from a JSON trace) work
//     without any state snapshotting.
//   - prime() opens a round; fire(slot) delivers (or, under the seeded
//     mutation, drops) one grouped slot; barrier() closes the round. The
//     flat sequence of fire choices interleaved with kAdvance markers IS
//     the schedule: replay(trace) reproduces any explored state
//     bit-for-bit.
//   - enabled() exposes the branch point with partial-order reduction
//     baked in (see the soundness notes on the member).
//   - state_hash() fingerprints the boundary state canonically, which the
//     explorer's visited set dedupes on.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "oracle/invariants.hpp"
#include "oracle/scramble.hpp"
#include "pubsub/pubsub_node.hpp"
#include "sched/branch.hpp"

namespace ssps::mc {

/// 128-bit truncated SHA-256 of the canonical state encoding.
struct StateHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  bool operator==(const StateHash&) const = default;
};

struct StateHashOf {
  std::size_t operator()(const StateHash& h) const {
    return static_cast<std::size_t>(h.hi ^ h.lo);
  }
};

/// One choice trace: grouped-slot indices, with kAdvance marking a round
/// boundary (barrier + prime of the next round). A trace replays the
/// exact schedule that produced a state — the counterexample format.
using Trace = std::vector<std::uint32_t>;

/// Trace marker for "close this round, open the next".
inline constexpr std::uint32_t kAdvance = 0xffffffffu;

/// The enabled deliveries at the current branch point.
struct Enabled {
  /// Grouped-slot indices, one per distinguishable delivery.
  std::vector<std::uint32_t> slots;
  /// Choices pruned at this branch point because their message encoding
  /// duplicates a kept slot (delivering either first commutes).
  std::size_t pruned = 0;
};

class Executor {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Subscribers spawned under the one supervisor (n <= 6 stays
    /// exhaustively explorable).
    std::size_t nodes = 3;
    /// Arbitrary-state injection applied to the root. The junk-message
    /// default is deliberately far below ScrambleOptions' own default:
    /// every junk message multiplies the interleaving space.
    oracle::ScrambleOptions scramble{.junk_messages = 2};
    /// Depth bound, in rounds, before a schedule counts as a
    /// counterexample (a search bound, not part of the property).
    std::size_t max_rounds = 24;
    /// Seeded protocol mutation: deliveries of messages with this name()
    /// are silently dropped instead of delivered — a broken transport the
    /// checker must catch. Empty = no mutation.
    std::string drop_message_name;
  };

  explicit Executor(const Options& options);

  /// Rebuilds the root state (deterministic for fixed options).
  void reset();

  /// Opens the next round: swaps the in-flight buffer into the grouped
  /// batch (seeded shuffle + group by target). Call at a boundary only.
  void prime();

  /// Closes the round: id-order timeout sweep + round clock. Call only
  /// once every slot of the primed batch has been fired.
  void barrier();

  /// Convenience for the explorer/replayer: barrier() + prime().
  void advance() {
    barrier();
    prime();
  }

  /// The current branch point, with two sound reductions applied:
  ///   1. Target order is fixed: only the lowest-id target with
  ///      undelivered messages offers choices. Deliveries to different
  ///      targets commute — a handler touches only its own node's state
  ///      and everything it sends arrives next round (the grouping
  ///      argument of network.cpp) — so exploring one target order loses
  ///      no behaviors.
  ///   2. Slots of that target whose message encoding equals an earlier
  ///      remaining slot's are pruned: delivering byte-identical messages
  ///      to the same node in either order is the same execution.
  /// Empty slots = the round is drained (advance to branch again).
  Enabled enabled();

  /// Fires grouped slot `slot`: delivers it, or discards it when the
  /// mutation matches. The slot must be a remaining slot of this round.
  void fire(std::uint32_t slot);

  /// reset() + re-application of `trace` (fires and kAdvance markers).
  /// After it the executor sits exactly where the recorded schedule left
  /// off — the backtracking and counterexample-replay primitive.
  void replay(const Trace& trace);

  /// Canonical fingerprint of the current position: every node's protocol
  /// variables (core::*::encode_state), publication-store root digest +
  /// size, per-node and network RNG streams, and the channel multiset
  /// (sorted per-message encodings — sound because every delivery order
  /// of a channel is explored). Mid-round positions additionally cover
  /// the undelivered remainder of the primed batch, so equal hashes mean
  /// equal futures whether taken at a boundary or between fires. Excludes
  /// the round/step clocks and all derived caches/version counters.
  StateHash state_hash();

  /// Oracle sweep of the current state (the accepting predicate).
  oracle::OracleReport check();

  bool primed() const { return primed_; }
  /// True when every slot of the primed batch has been fired.
  bool drained() const { return fired_ == batch_; }
  /// Rounds closed since reset().
  std::size_t rounds() const { return rounds_; }

  pubsub::PubSubSystem& system() { return *sys_; }

 private:
  /// Canonical encoding of one in-flight message (target + name +
  /// payload). Aborts with a diagnostic if the message class lacks an
  /// encoding — every protocol message must stay encodable.
  std::vector<std::uint8_t> encode_envelope(const sim::Envelope& env) const;

  Options opt_;
  std::unique_ptr<pubsub::PubSubSystem> sys_;
  sched::BranchScheduler* branch_ = nullptr;  // owned by the Network

  bool primed_ = false;
  std::size_t batch_ = 0;
  std::size_t fired_ = 0;
  std::size_t rounds_ = 0;
  /// fired flags per grouped slot of the current round.
  std::vector<bool> consumed_;
};

}  // namespace ssps::mc
