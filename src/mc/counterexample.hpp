// Counterexample (de)serialization: a failing schedule as a small JSON
// file that replays deterministically.
//
// The file carries everything Executor::replay needs to re-establish the
// violating execution bit-for-bit — the full root options (seed, size,
// scramble knobs, mutation) plus the choice trace — so a counterexample
// found by a nightly bounded-depth run reproduces locally with
// `ssps_mc --replay <file>`.
#pragma once

#include <optional>
#include <string>

#include "mc/explorer.hpp"

namespace ssps::mc {

struct CounterexampleFile {
  Executor::Options options;
  /// "depth-bound" or "livelock".
  std::string kind;
  /// Oracle summary at the recorded end state (informational; replay
  /// recomputes it).
  std::string violation;
  Trace trace;
};

/// Writes `ce` as JSON to `path`; returns false on I/O failure.
bool write_counterexample(const std::string& path,
                          const CounterexampleFile& ce);

/// Parses a file written by write_counterexample. Returns nullopt on I/O
/// or parse failure.
std::optional<CounterexampleFile> read_counterexample(const std::string& path);

}  // namespace ssps::mc
