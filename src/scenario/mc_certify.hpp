// mc-certify: the scenario layer's canonical model-checking entry.
//
// Where scrambled_variant() samples ONE schedule per seed from a scrambled
// start, mc_certify() hands the same kind of scrambled small-n root to the
// exhaustive interleaving explorer (src/mc) and certifies EVERY schedule.
// The option derivation mirrors the sweep family — the scramble seed is
// decorrelated from the construction seed with the same mixing constants
// as scrambled_variant — so a certified (seed, nodes) pair is the
// exhaustive counterpart of the sweep's sampled verdicts.
#pragma once

#include <cstdint>

#include "mc/explorer.hpp"

namespace ssps::scenario {

/// The canonical certification configuration for one (seed, nodes) pair:
/// scrambled root, small junk-message budget, 24-round depth bound.
mc::Executor::Options mc_certify_options(std::uint64_t seed,
                                         std::size_t nodes);

/// Runs the exhaustive explorer over mc_certify_options(seed, nodes).
mc::Certificate mc_certify(std::uint64_t seed, std::size_t nodes);

}  // namespace ssps::scenario
