#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "core/label.hpp"
#include "sched/async.hpp"

namespace ssps::scenario {

namespace {

/// Decorrelates the runner's decision stream from the network's scheduler
/// stream (both derive from the one spec seed).
constexpr std::uint64_t kRunnerSeedSalt = 0x5c3ec0de5c3ec0deULL;

/// The unit every duration and latency figure in the report is measured
/// in — the clock the spec's scheduler advances.
const char* clock_label(Scheduler scheduler) {
  switch (scheduler) {
    case Scheduler::kRounds:
      return "rounds";
    case Scheduler::kAsync:
      return "steps";
    case Scheduler::kTimed:
      return "virtual-seconds";
  }
  return "rounds";
}

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed ^ kRunnerSeedSalt) {
  // run_phase() hands out references into this vector which callers hold
  // across subsequent run_phase() calls (see examples/); never reallocate.
  report_.phases.reserve(spec_.phases.size());
  report_.scenario = spec_.name;
  report_.seed = spec_.seed;
  report_.nodes = spec_.nodes;
  report_.mode = spec_.mode;
  report_.supervisors = spec_.supervisors;
  report_.topics = spec_.topics;
  // The round-scheduler worker count the run actually uses: async and
  // timed specs never install the pool (see the guard below), so they
  // report 1.
  report_.threads =
      spec_.exec.scheduler == Scheduler::kRounds ? spec_.exec.threads : 1;
  report_.clock = clock_label(spec_.exec.scheduler);
  report_.latency.unit = report_.clock;

  if (spec_.mode == Mode::kSingleTopic) {
    single_ = std::make_unique<pubsub::PubSubSystem>(
        core::SkipRingSystem::Options{.seed = spec_.seed,
                                      .fd_delay = spec_.fd_delay},
        spec_.pubsub);
  } else {
    SSPS_ASSERT_MSG(spec_.supervisors >= 1, "multi-topic scenario needs a supervisor");
    SSPS_ASSERT_MSG(spec_.topics >= 1, "multi-topic scenario needs topics");
    multi_net_ = std::make_unique<sim::Network>(spec_.seed);
    fd_ = std::make_unique<sim::FailureDetector>(*multi_net_, spec_.fd_delay);
    fd_slot_ = fd_.get();
    std::vector<sim::NodeId> initial;
    for (std::size_t i = 0; i < spec_.supervisors; ++i) initial.push_back(spawn_supervisor());
    group_ = std::make_unique<pubsub::SupervisorGroup>(initial, spec_.virtual_nodes);
  }
  if (spec_.exec.scheduler == Scheduler::kTimed) {
    // Installs the event-driven scheduler and the link model. The network
    // is still quiescent here (subscribers join in phase 0), which
    // enable_timed requires.
    net().enable_timed(spec_.exec.timed);
    // Corrupting links need the damage model: encode, mangle, re-decode
    // through the real wire codec. Installed only when some link class can
    // actually corrupt, so corruption-free timed specs keep reproducing
    // their previous reports byte-for-byte.
    if (spec_.exec.timed.local.corrupt > 0.0 ||
        spec_.exec.timed.remote.corrupt > 0.0) {
      corrupter_ = std::make_unique<wire::CodecCorrupter>();
      net().set_corrupter(corrupter_.get());
    }
  } else if (spec_.exec.scheduler == Scheduler::kAsync) {
    // The async stepper sits behind the same seam as the other flavors:
    // one unit = one randomized step, probe sampling on the step stride.
    net().set_scheduler(std::make_unique<sched::AsyncScheduler>());
    // Async runs measure latency and stamp telemetry on the step clock —
    // the round counter barely moves under step scheduling.
    net().set_clock_mode(sim::Network::ClockMode::kSteps);
  }
  // Crash-recovery needs periodic state snapshots to restart from; any
  // scheduler flavor can take them (the capture is a pure state read).
  if (spec_.snapshot_every > 0) net().enable_snapshots(spec_.snapshot_every);
  // Async/timed schedulers are single-threaded by contract, so a worker
  // pool would be dead weight — threads only applies to the round
  // scheduler (a spec-authored mismatch is tolerated and ignored; the
  // tools reject user-requested ones via ExecutionSpec::validate).
  if (spec_.exec.threads > 1 && spec_.exec.scheduler == Scheduler::kRounds) {
    net().set_threads(spec_.exec.threads);
  }

  // Per-phase telemetry ring: every scheduler samples through its own
  // Scheduler::sample hook — round/timed runs once per round after the
  // barrier, async runs every AsyncConfig::probe_stride steps on the step
  // clock. The enricher supplies the one field the Network cannot compute
  // itself.
  if (spec_.timeseries_capacity > 0) {
    probe_ = std::make_unique<telemetry::RoundProbe>(spec_.timeseries_capacity);
    probe_->set_enricher([this](telemetry::RoundSample& s) {
      if (spec_.mode == Mode::kSingleTopic) {
        s.nonconforming = single_->nonconforming_count();
      } else {
        // Multi-topic: nonconforming counts topics (not nodes) that fail
        // the engine's convergence probe; the verdict cache makes the
        // per-round sweep cheap between epoch changes.
        std::uint64_t bad = 0;
        for (const auto& [topic, members] : members_) {
          if (!members.empty() && !topic_converged(topic, members)) ++bad;
        }
        s.nonconforming = bad;
      }
    });
    net().attach_round_probe(probe_.get());
  }
}

sim::Network& ScenarioRunner::net() {
  return spec_.mode == Mode::kSingleTopic ? single_->net() : *multi_net_;
}

pubsub::PubSubSystem& ScenarioRunner::single() {
  SSPS_ASSERT_MSG(single_ != nullptr, "single(): scenario is multi-topic");
  return *single_;
}

const pubsub::PubSubSystem& ScenarioRunner::single() const {
  SSPS_ASSERT_MSG(single_ != nullptr, "single(): scenario is multi-topic");
  return *single_;
}

const pubsub::SupervisorGroup& ScenarioRunner::group() const {
  SSPS_ASSERT_MSG(group_ != nullptr, "group(): scenario is single-topic");
  return *group_;
}

std::vector<sim::NodeId> ScenarioRunner::topic_members(TopicId topic) const {
  auto it = members_.find(topic);
  return it == members_.end() ? std::vector<sim::NodeId>{} : it->second;
}

const ScenarioReport& ScenarioRunner::run() {
  while (next_phase_ < spec_.phases.size()) run_phase(next_phase_);
  report_.ok = true;
  report_.oracle_ok = true;
  report_.total_rounds = 0;
  report_.total_messages = 0;
  report_.total_bytes = 0;
  for (std::size_t i = 0; i < report_.phases.size(); ++i) {
    const PhaseReport& p = report_.phases[i];
    if (spec_.phases[i].converge && !p.converged) report_.ok = false;
    // An oracle-checked convergence wait must end in a legal state: when
    // the oracle is enabled the wait predicate itself requires legality,
    // so nonzero violations here mean the wait timed out with the system
    // still illegal — the sweep's details name the failing invariants.
    // Violations in phases that deliberately left the system mid-churn
    // (no convergence wait) stay informational.
    if (p.oracle && spec_.phases[i].converge && p.oracle->violations > 0) {
      report_.oracle_ok = false;
    }
    report_.total_rounds += p.rounds;
    report_.total_messages += p.messages;
    report_.total_bytes += p.bytes;
  }

  // Whole-run delivery-latency distribution (never reset per phase: the
  // interesting percentiles span publish-to-recovery arcs that cross phase
  // boundaries). latency() folds outstanding worker shards first.
  const telemetry::LatencyTracker& lat = net().latency();
  report_.latency.global = lat.global().summary();
  report_.latency.per_topic.clear();
  for (const auto& [topic, hist] : lat.by_topic()) {
    report_.latency.per_topic[topic] = hist.summary();
  }

  if (probe_) {
    TimeSeriesReport ts;
    ts.unit = report_.clock;
    ts.dropped = probe_->dropped();
    ts.samples.reserve(probe_->size());
    for (std::size_t i = 0; i < probe_->size(); ++i) {
      ts.samples.push_back(probe_->at(i));
    }
    report_.timeseries = std::move(ts);
  }
  return report_;
}

const PhaseReport& ScenarioRunner::run_phase(std::size_t index) {
  SSPS_ASSERT_MSG(index == next_phase_ && index < spec_.phases.size(),
                  "run_phase: phases must execute in declaration order");
  const Phase& phase = spec_.phases[index];
  next_phase_ += 1;

  PhaseReport out;
  out.name = phase.name;

  sim::Network& network = net();
  network.metrics().reset();
  const sim::Round round_start = network.round();
  const sim::Step step_start = network.now();
  // timed_corrupted is cumulative over the run; the phase reports a delta.
  const std::uint64_t corrupted_start = network.timed_corrupted();

  if (!phase.partitions.empty()) {
    SSPS_ASSERT_MSG(spec_.exec.scheduler == Scheduler::kTimed,
                    "phase partitions require the timed scheduler");
    // Spec windows are relative to the phase start; shift them onto the
    // absolute virtual clock.
    const std::uint64_t now_s =
        network.virtual_now_ticks() / sim::kTicksPerInterval;
    for (sim::PartitionWindow w : phase.partitions) {
      w.from_s += now_s;
      w.to_s += now_s;
      network.add_partition(w);
    }
  }
  if (phase.set_fd_delay) apply_fd_delay(*phase.set_fd_delay);
  if (spec_.mode == Mode::kMultiTopic) apply_supervisor_changes(phase, out);
  apply_churn(phase.churn, out);
  if (phase.flash_crowd_topic) apply_flash_crowd(*phase.flash_crowd_topic);
  apply_chaos(phase);
  apply_scramble(phase);
  apply_publish(phase.publish);

  run_budget(phase.run);
  if (phase.converge) {
    out.convergence_rounds =
        wait_converged(phase.max_rounds, oracle_enabled(phase), out.converged);
  }

  // Rounds and timed intervals both advance the round counter; only the
  // async scheduler counts raw steps.
  out.rounds = spec_.exec.scheduler == Scheduler::kAsync
                   ? static_cast<std::size_t>(network.now() - step_start)
                   : static_cast<std::size_t>(network.round() - round_start);

  out.corrupted = network.timed_corrupted() - corrupted_start;
  sample(phase, out);
  if (oracle_enabled(phase)) {
    constexpr std::size_t kMaxDetails = 8;
    const oracle::OracleReport sweep = check_oracle();
    OracleSummary summary;
    summary.violations = sweep.violations.size();
    summary.checked_nodes = sweep.checked_nodes;
    summary.checked_topics = sweep.checked_topics;
    summary.by_invariant = sweep.count_by_invariant();
    for (std::size_t i = 0; i < std::min(kMaxDetails, sweep.violations.size()); ++i) {
      summary.details.push_back(sweep.violations[i].to_string());
    }
    out.oracle = std::move(summary);
  }
  report_.phases.push_back(std::move(out));
  return report_.phases.back();
}

bool ScenarioRunner::oracle_enabled(const Phase& phase) const {
  return spec_.oracle || phase.check_invariants;
}

oracle::MultiTopicView ScenarioRunner::multi_view() {
  SSPS_ASSERT_MSG(spec_.mode == Mode::kMultiTopic,
                  "multi_view: scenario is single-topic");
  oracle::MultiTopicView view;
  view.net = multi_net_.get();
  view.group = group_.get();
  view.supervisors = sup_ids_;
  view.members = members_;
  return view;
}

oracle::OracleReport ScenarioRunner::check_oracle() {
  if (spec_.mode == Mode::kSingleTopic) return oracle::check_system(*single_);
  return oracle::check_deployment(multi_view());
}

void ScenarioRunner::apply_fd_delay(sim::Round delay) {
  if (spec_.mode == Mode::kSingleTopic) {
    single_->failure_detector().set_delay(delay);
  } else {
    fd_->set_delay(delay);
  }
}

// ---------------------------------------------------------------------------
// Churn
// ---------------------------------------------------------------------------

sim::NodeId ScenarioRunner::pick_active_single() {
  const auto active = single_->active_ids();
  SSPS_ASSERT_MSG(!active.empty(), "churn: no active subscriber left to pick");
  return active[rng_.pick_index(active)];
}

void ScenarioRunner::apply_churn(const ChurnWave& churn, PhaseReport& out) {
  if (spec_.mode == Mode::kSingleTopic) {
    // Recoveries first (oldest crash first), so a phase never revives a
    // node its own crash wave just killed. A node whose snapshot restores
    // cleanly resumes from that (stale) state; any other node — empty,
    // truncated or corrupted snapshot — restarts from scratch. Both
    // re-stabilize through the ordinary join/repair path.
    for (std::size_t i = 0; i < churn.recoveries && !crashed_single_.empty(); ++i) {
      const sim::NodeId revived = crashed_single_.front();
      crashed_single_.erase(crashed_single_.begin());
      out.recovered += 1;
      if (single_->recover_pubsub_subscriber(revived)) out.recovered_clean += 1;
    }
    std::size_t crashes = churn.crashes;
    if (churn.crash_min_label && crashes > 0) {
      // The label-"0" holder is the hub of every shortcut table — the
      // worst-case crash the drill scenarios aim at.
      for (sim::NodeId id : single_->active_ids()) {
        const auto& label = single_->subscriber(id).label();
        if (label && *label == core::Label::from_index(0)) {
          single_->crash(id);
          crashed_single_.push_back(id);
          crashes -= 1;
          break;
        }
      }
    }
    for (std::size_t i = 0; i < crashes; ++i) {
      const sim::NodeId victim = pick_active_single();
      single_->crash(victim);
      crashed_single_.push_back(victim);
    }
    for (std::size_t i = 0; i < churn.leaves; ++i) {
      single_->request_unsubscribe(pick_active_single());
    }
    for (std::size_t i = 0; i < churn.joins; ++i) single_->add_pubsub_subscriber();
    return;
  }

  // Multi-topic: a crash removes one client everywhere; a leave is one
  // graceful (client, topic) unsubscribe; a join spawns a client that
  // subscribes to `topics_per_client` random topics.
  for (std::size_t i = 0; i < churn.crashes && !clients_.empty(); ++i) {
    const std::size_t at = rng_.pick_index(clients_);
    const sim::NodeId victim = clients_[at];
    multi_net_->crash(victim);
    clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(at));
    for (auto& [topic, members] : members_) {
      std::erase(members, victim);
      if (members.empty()) pubs_per_topic_[topic] = 0;  // history died with them
    }
  }
  for (std::size_t i = 0; i < churn.leaves; ++i) {
    std::vector<TopicId> candidates;
    for (const auto& [topic, members] : members_) {
      if (!members.empty()) candidates.push_back(topic);
    }
    if (candidates.empty()) break;
    const TopicId topic = candidates[rng_.pick_index(candidates)];
    auto& members = members_[topic];
    const std::size_t at = rng_.pick_index(members);
    const sim::NodeId leaver = members[at];
    multi_net_->node_as<pubsub::MultiTopicNode>(leaver).unsubscribe(topic);
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(at));
    if (members.empty()) pubs_per_topic_[topic] = 0;
  }
  for (std::size_t i = 0; i < churn.joins; ++i) spawn_client();
}

void ScenarioRunner::spawn_client() {
  const sim::NodeId id = multi_net_->spawn<pubsub::MultiTopicNode>(
      [this](TopicId t) { return group_->supervisor_for(t); }, spec_.pubsub);
  clients_.push_back(id);
  // Subscribe to `topics_per_client` distinct topics, chosen uniformly.
  const std::size_t want = std::min(spec_.topics_per_client, spec_.topics);
  std::vector<TopicId> universe;
  universe.reserve(spec_.topics);
  for (std::size_t t = 1; t <= spec_.topics; ++t) {
    universe.push_back(static_cast<TopicId>(t));
  }
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t at = rng_.between(i, universe.size() - 1);
    std::swap(universe[i], universe[at]);
    subscribe_client(id, universe[i]);
  }
}

void ScenarioRunner::subscribe_client(sim::NodeId client, TopicId topic) {
  auto& members = members_[topic];
  if (std::find(members.begin(), members.end(), client) != members.end()) return;
  multi_net_->node_as<pubsub::MultiTopicNode>(client).subscribe(topic);
  members.push_back(client);
}

void ScenarioRunner::apply_flash_crowd(TopicId topic) {
  SSPS_ASSERT_MSG(spec_.mode == Mode::kMultiTopic,
                  "flash_crowd_topic requires a multi-topic scenario");
  for (sim::NodeId client : clients_) subscribe_client(client, topic);
}

// ---------------------------------------------------------------------------
// Adversarial state
// ---------------------------------------------------------------------------

void ScenarioRunner::apply_chaos(const Phase& phase) {
  if (!phase.chaos && !phase.split_brain) return;
  SSPS_ASSERT_MSG(spec_.mode == Mode::kSingleTopic,
                  "chaos/split_brain require a single-topic scenario");
  if (phase.chaos) core::corrupt_system(*single_, *phase.chaos);
  if (phase.split_brain) core::split_brain(*single_, rng_.next());
}

void ScenarioRunner::apply_scramble(const Phase& phase) {
  if (!phase.scramble) return;
  oracle::ArbitraryStateInjector injector(*phase.scramble);
  if (spec_.mode == Mode::kSingleTopic) {
    injector.scramble(*single_);
  } else {
    injector.scramble(multi_view());
  }
}

// ---------------------------------------------------------------------------
// Publishing
// ---------------------------------------------------------------------------

std::string ScenarioRunner::make_payload(std::size_t payload_bytes) {
  std::string payload = "p" + std::to_string(payload_seq_++);
  if (payload.size() < payload_bytes) payload.resize(payload_bytes, 'x');
  return payload;
}

TopicId ScenarioRunner::pick_topic(const PublishLoad& load) {
  if (load.topic) return *load.topic;
  std::vector<TopicId> candidates;
  for (const auto& [topic, members] : members_) {
    if (!members.empty()) candidates.push_back(topic);
  }
  SSPS_ASSERT_MSG(!candidates.empty(), "publish: no topic has any subscriber");
  if (load.zipf_s <= 0.0) return candidates[rng_.pick_index(candidates)];
  // Zipf over the candidate ranks: rank r (0-based) has weight (r+1)^-s.
  double total = 0.0;
  std::vector<double> cumulative(candidates.size());
  for (std::size_t r = 0; r < candidates.size(); ++r) {
    total += std::pow(static_cast<double>(r + 1), -load.zipf_s);
    cumulative[r] = total;
  }
  const double u = rng_.uniform01() * total;
  const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
  const std::size_t r = std::min(
      static_cast<std::size_t>(it - cumulative.begin()), candidates.size() - 1);
  return candidates[r];
}

void ScenarioRunner::apply_publish(const PublishLoad& load) {
  for (std::size_t i = 0; i < load.count; ++i) {
    if (spec_.mode == Mode::kSingleTopic) {
      single_->pubsub(pick_active_single()).publish(make_payload(load.payload_bytes));
    } else {
      const TopicId topic = pick_topic(load);
      auto& members = members_[topic];
      if (members.empty()) continue;  // pinned topic may be empty
      const sim::NodeId publisher = members[rng_.pick_index(members)];
      multi_net_->node_as<pubsub::MultiTopicNode>(publisher).publish(
          topic, make_payload(load.payload_bytes));
      pubs_per_topic_[topic] += 1;
    }
    if (load.gap > 0 && i + 1 < load.count) run_budget(load.gap);
  }
}

// ---------------------------------------------------------------------------
// Supervisor-group membership (multi-topic mode)
// ---------------------------------------------------------------------------

sim::NodeId ScenarioRunner::spawn_supervisor() {
  const sim::NodeId id = multi_net_->spawn<pubsub::MultiTopicSupervisorNode>(&fd_slot_);
  sup_ids_.push_back(id);
  return id;
}

void ScenarioRunner::rehome_topic(TopicId topic, sim::NodeId old_owner,
                                  bool graceful) {
  auto it = members_.find(topic);
  if (it == members_.end() || it->second.empty()) return;
  const std::vector<sim::NodeId> members = it->second;

  // Every member's local store survives the handoff: clients re-add their
  // publications into the fresh per-topic instance at the new owner, and
  // anti-entropy re-spreads anything a member was missing.
  std::map<sim::NodeId, std::vector<pubsub::Publication>> saved;
  for (sim::NodeId m : members) {
    auto& node = multi_net_->node_as<pubsub::MultiTopicNode>(m);
    if (!node.subscribed(topic)) continue;
    saved[m] = node.pubsub(topic).trie().all();
    if (graceful) {
      node.unsubscribe(topic);
    } else {
      node.drop_topic(topic);
    }
  }
  if (graceful) {
    // Let the departure handshake with the (still alive) old owner finish.
    const auto done = multi_net_->run_until(
        [&] {
          for (sim::NodeId m : members) {
            if (multi_net_->node_as<pubsub::MultiTopicNode>(m).subscribed(topic)) {
              return false;
            }
          }
          return true;
        },
        1000);
    if (!done) {
      // Handshake timed out (e.g. an extreme fd_delay): fall back to a
      // forced drop so the member still moves — subscribe() below would
      // otherwise no-op on the lingering instance. Send an Unsubscribe
      // tombstone to the old owner for each dropped member so its (still
      // alive) database does not keep managing clients the new owner now
      // serves. send(), not inject(): this is engine-orchestrated protocol
      // traffic, and the inject counters are reserved for adversarial
      // content.
      for (sim::NodeId m : members) {
        auto& node = multi_net_->node_as<pubsub::MultiTopicNode>(m);
        if (!node.subscribed(topic)) continue;
        node.drop_topic(topic);
        if (old_owner) {
          multi_net_->send(
              old_owner,
              multi_net_->pool().make<pubsub::TopicEnvelope>(
                  topic, multi_net_->pool().make<core::msg::Unsubscribe>(m)));
        }
      }
    }
  }
  for (sim::NodeId m : members) {
    auto& node = multi_net_->node_as<pubsub::MultiTopicNode>(m);
    node.subscribe(topic);
    for (const pubsub::Publication& p : saved[m]) node.pubsub(topic).add_local(p);
  }
}

void ScenarioRunner::apply_supervisor_changes(const Phase& phase, PhaseReport& out) {
  auto owners_before = [&] {
    std::map<TopicId, sim::NodeId> owners;
    for (const auto& [topic, members] : members_) {
      if (!members.empty()) owners[topic] = group_->supervisor_for(topic);
    }
    return owners;
  };
  auto rebalance = [&](const std::map<TopicId, sim::NodeId>& before, bool graceful) {
    for (const auto& [topic, old_owner] : before) {
      if (group_->supervisor_for(topic) != old_owner) {
        rehome_topic(topic, graceful ? old_owner : sim::NodeId::null(), graceful);
        out.moved_topics += 1;
      }
    }
  };

  for (std::size_t i = 0; i < phase.add_supervisors; ++i) {
    const auto before = owners_before();
    group_->add_supervisor(spawn_supervisor());
    rebalance(before, /*graceful=*/true);
  }
  for (std::size_t i = 0; i < phase.remove_supervisors && sup_ids_.size() > 1; ++i) {
    const auto before = owners_before();
    const std::size_t at = rng_.pick_index(sup_ids_);
    group_->remove_supervisor(sup_ids_[at]);
    // The drained supervisor stays alive, so rehoming can use the
    // unsubscribe handshake; its per-topic databases empty out.
    sup_ids_.erase(sup_ids_.begin() + static_cast<std::ptrdiff_t>(at));
    rebalance(before, /*graceful=*/true);
  }
  for (std::size_t i = 0; i < phase.crash_supervisors && sup_ids_.size() > 1; ++i) {
    const auto before = owners_before();
    const std::size_t at = rng_.pick_index(sup_ids_);
    const sim::NodeId victim = sup_ids_[at];
    group_->remove_supervisor(victim);
    multi_net_->crash(victim);
    sup_ids_.erase(sup_ids_.begin() + static_cast<std::ptrdiff_t>(at));
    rebalance(before, /*graceful=*/false);
  }
}

// ---------------------------------------------------------------------------
// Scheduling and convergence
// ---------------------------------------------------------------------------

void ScenarioRunner::run_budget(std::size_t budget) {
  if (budget == 0) return;
  // One call for every flavor: the installed scheduler defines the unit
  // (round, timed interval, or async step).
  net().run_units(budget);
}

bool ScenarioRunner::converged() const {
  if (spec_.mode == Mode::kSingleTopic) {
    return single_->topology_legit() && single_->publications_converged();
  }
  for (const auto& [topic, members] : members_) {
    if (members.empty()) continue;
    if (!topic_converged(topic, members)) return false;
  }
  return true;
}

bool ScenarioRunner::topic_converged(
    TopicId topic, const std::vector<sim::NodeId>& members) const {
  auto* self = const_cast<ScenarioRunner*>(this);
  const sim::NodeId owner = group_->supervisor_for(topic);
  auto& sup = self->multi_net_->node_as<pubsub::MultiTopicSupervisorNode>(owner);
  const core::SupervisorProtocol* proto = sup.find_topic(topic);
  if (proto == nullptr) return false;  // no instance yet: nothing to cache
  const std::size_t want_pubs = [&] {
    auto it = pubs_per_topic_.find(topic);
    return it == pubs_per_topic_.end() ? std::size_t{0} : it->second;
  }();

  // Build the topic's epoch key from cheap version reads: two integers
  // per member, one per database. Every fact the full check below
  // evaluates is a function of this key — proto->size(),
  // database_consistent() and label_of() of the database (db_version),
  // overlay.label() of the member's overlay state (state_version), the
  // trie size (keyed directly) — so an unchanged key means an unchanged
  // verdict, positive or negative.
  epoch_scratch_.clear();
  for (sim::NodeId m : members) {
    auto& node = self->multi_net_->node_as<pubsub::MultiTopicNode>(m);
    const auto epoch = node.topic_epoch(topic);
    epoch_scratch_.push_back(epoch ? MemberEpoch{m, epoch->first, epoch->second}
                                   : MemberEpoch{m, ~std::uint64_t{0}, 0});
  }
  TopicVerdict& verdict = verdicts_[topic];
  if (verdict.owner == owner && verdict.db_version == proto->db_version() &&
      verdict.want_pubs == want_pubs && verdict.members == epoch_scratch_) {
    return verdict.ok;
  }

  // Epoch moved (or first sight): re-evaluate in full and re-key.
  verdict.owner = owner;
  verdict.db_version = proto->db_version();
  verdict.want_pubs = want_pubs;
  verdict.members = epoch_scratch_;
  verdict.ok = [&] {
    if (proto->size() != members.size() || !proto->database_consistent()) {
      return false;
    }
    for (sim::NodeId m : members) {
      auto& node = self->multi_net_->node_as<pubsub::MultiTopicNode>(m);
      if (!node.subscribed(topic)) return false;
      const auto& overlay = node.overlay(topic);
      if (!overlay.label() || proto->label_of(m) != overlay.label()) return false;
      if (node.pubsub(topic).trie().size() != want_pubs) return false;
    }
    return true;
  }();
  return verdict.ok;
}

bool ScenarioRunner::converged_reference() const {
  if (spec_.mode == Mode::kSingleTopic) {
    return single_->topology_legit() && single_->publications_converged();
  }
  auto* self = const_cast<ScenarioRunner*>(this);
  for (const auto& [topic, members] : members_) {
    if (members.empty()) continue;
    const sim::NodeId owner = group_->supervisor_for(topic);
    auto& sup = self->multi_net_->node_as<pubsub::MultiTopicSupervisorNode>(owner);
    const core::SupervisorProtocol* proto = sup.find_topic(topic);
    if (proto == nullptr) return false;
    if (proto->size() != members.size() || !proto->database_consistent()) return false;
    const std::size_t want_pubs = [&] {
      auto it = pubs_per_topic_.find(topic);
      return it == pubs_per_topic_.end() ? std::size_t{0} : it->second;
    }();
    for (sim::NodeId m : members) {
      auto& node = self->multi_net_->node_as<pubsub::MultiTopicNode>(m);
      if (!node.subscribed(topic)) return false;
      const auto& overlay = node.overlay(topic);
      if (!overlay.label() || proto->label_of(m) != overlay.label()) return false;
      if (node.pubsub(topic).trie().size() != want_pubs) return false;
    }
  }
  return true;
}

std::size_t ScenarioRunner::wait_converged(std::size_t max_rounds, bool oracle_too,
                                           bool& converged_out) {
  // With the oracle enabled the target state is the *full* legal-state
  // predicate, which is strictly stronger than the engine's convergence
  // probes (e.g. the multi-topic probe never looks at shortcut tables).
  // The cheap probe runs first so the oracle sweep only prices rounds that
  // already look converged.
  auto settled = [this, oracle_too] {
    return converged() && (!oracle_too || check_oracle().ok());
  };
  // One wait for every flavor: run_until probes once per unit under the
  // round/timed schedulers and once per settle_stride (~one action per
  // alive node) under the async stepper. The returned duration is in the
  // scheduler's own units — step-grained schedulers report elapsed steps
  // (stride x iterations), matching PhaseReport::rounds' units.
  const std::uint64_t start = net().unit_now();
  const auto used = net().run_until(settled, max_rounds);
  converged_out = used.has_value();
  return used.value_or(
      static_cast<std::size_t>(net().unit_now() - start));
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

void ScenarioRunner::sample(const Phase& phase, PhaseReport& out) {
  (void)phase;
  const sim::Metrics metrics = net().metrics().snapshot();
  out.messages = metrics.total_sent();
  out.delivered = metrics.total_delivered();
  out.bytes = metrics.total_bytes();
  out.injected = metrics.total_injected();
  out.injected_bytes = metrics.injected_bytes();
  out.rejected = metrics.total_rejected();
  out.rejected_bytes = metrics.rejected_bytes();
  for (const auto& [label, counter] : metrics.by_label()) {
    out.by_label[label] = {counter.count, counter.bytes};
  }

  if (spec_.mode == Mode::kSingleTopic) {
    out.alive_nodes = single_->subscriber_ids().size();
    out.publications = single_->distinct_publications();
    SupervisorLoad load;
    load.node = single_->supervisor_id();
    load.received = metrics.received_by(load.node);
    load.topics = 1;
    load.database = single_->supervisor().size();
    load.arc_share = 1.0;
    out.supervisor_load.push_back(load);
    return;
  }

  out.alive_nodes = clients_.size();
  for (const auto& [topic, count] : pubs_per_topic_) out.publications += count;
  for (sim::NodeId id : sup_ids_) {
    auto& sup = multi_net_->node_as<pubsub::MultiTopicSupervisorNode>(id);
    SupervisorLoad load;
    load.node = id;
    load.received = metrics.received_by(id);
    load.topics = sup.topic_count();
    for (const auto& [topic, members] : members_) {
      const auto* proto = sup.find_topic(topic);
      if (proto != nullptr && group_->supervisor_for(topic) == id) {
        load.database += proto->size();
      }
    }
    load.arc_share = group_->arc_share(id);
    out.supervisor_load.push_back(load);
  }
  for (const auto& [topic, members] : members_) {
    if (!members.empty()) out.topic_fanout[topic] = members.size();
  }
}

}  // namespace ssps::scenario
