// Declarative scenario descriptions: what a workload does, not how.
//
// A ScenarioSpec names a deployment shape (one supervised skip ring, or a
// consistent-hashing supervisor group serving many topics) plus an ordered
// list of phases. Each phase bundles the actions of one experiment stage —
// churn waves, flash-crowd subscribes, Zipf-skewed publishing, adversarial
// state corruption (core/chaos), failure-detector retuning, supervisor
// group membership changes — followed by a scheduler budget and an
// optional convergence wait. The ScenarioRunner (runner.hpp) executes the
// spec against sim::Network and samples per-phase metrics; the same spec +
// seed reproduces the same report bit-for-bit.
//
// This is the reproduction's analogue of how related systems are judged:
// PSVR by stabilization time under scripted churn, VCube-PS by
// throughput/latency under skewed per-topic publication workloads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "oracle/scramble.hpp"
#include "pubsub/pubsub_node.hpp"
#include "pubsub/supervisor_group.hpp"
#include "scenario/execution.hpp"
#include "sim/types.hpp"

namespace ssps::scenario {

using pubsub::TopicId;

/// Deployment shape a scenario drives.
enum class Mode {
  /// One SkipRingSystem (single supervisor, single topic) with the
  /// Algorithm 5 publication layer on every subscriber.
  kSingleTopic,
  /// A sim::Network holding MultiTopicSupervisorNodes sharded by a
  /// consistent-hashing SupervisorGroup, plus MultiTopicNode clients.
  kMultiTopic,
};

/// One wave of membership churn.
struct ChurnWave {
  std::size_t joins = 0;    ///< fresh subscribers spawned (and subscribed)
  std::size_t leaves = 0;   ///< graceful unsubscribes of random members
  std::size_t crashes = 0;  ///< fail-stop crashes of random members
  /// Single-topic only: restart this many previously crashed subscribers
  /// (oldest crash first) from their last periodic snapshot
  /// (ScenarioSpec::snapshot_every; sim::Network::recover). A node whose
  /// snapshot is stale, corrupted or missing restarts from scratch; either
  /// way it re-stabilizes into the ring. Applied before this wave's own
  /// crashes, so a phase cannot recover a node it just killed.
  std::size_t recoveries = 0;
  /// Single-topic only: make one of the crashes hit the label-"0" holder
  /// (the best-connected node) if it exists — the worst-case crash.
  bool crash_min_label = false;
};

/// A publication workload.
struct PublishLoad {
  std::size_t count = 0;          ///< publications issued this phase
  std::size_t payload_bytes = 32; ///< payload size of each publication
  /// Zipf skew over topics (multi-topic mode): topic ranked r is chosen
  /// with probability proportional to 1/(r+1)^zipf_s. 0 = uniform.
  double zipf_s = 0.0;
  /// Pin every publication to one topic (e.g. the flash-crowd hot topic).
  std::optional<TopicId> topic;
  /// Scheduler budget granted between consecutive publications (0 = all
  /// publications enter the network in the same round).
  std::size_t gap = 0;
};

/// One experiment stage. Actions are applied in declaration order:
/// failure-detector retune, supervisor-group changes, churn, flash crowd,
/// chaos/split-brain, publishing — then `run` budget, then the optional
/// convergence wait.
struct Phase {
  std::string name;

  /// Retunes the (supervisor-side) failure detector delay, in rounds.
  std::optional<sim::Round> set_fd_delay;

  /// Multi-topic only: grow the supervisor group by spawning this many
  /// fresh supervisors; topics whose arcs move are rehomed gracefully.
  std::size_t add_supervisors = 0;
  /// Multi-topic only: gracefully drain this many supervisors (they stay
  /// alive; their topics are rehomed via the unsubscribe handshake).
  std::size_t remove_supervisors = 0;
  /// Multi-topic only: fail-stop crash this many supervisors; their topics
  /// are rehomed by force (drop_topic + fresh subscribe at the new owner).
  std::size_t crash_supervisors = 0;

  ChurnWave churn;

  /// Multi-topic only: every client subscribes to this topic at once (the
  /// flash-crowd pattern).
  std::optional<TopicId> flash_crowd_topic;

  /// Single-topic only: corrupt the converged system adversarially.
  std::optional<core::ChaosOptions> chaos;
  /// Single-topic only: split-brain relabeling (core/chaos split_brain).
  bool split_brain = false;

  /// Timed scheduler only: partition windows installed when the phase
  /// starts. Window times are relative to the phase start (in virtual
  /// seconds); the runner shifts them to absolute simulation time.
  std::vector<sim::PartitionWindow> partitions;

  /// Both modes: InjectArbitraryState — rebuild every protocol variable
  /// from scratch via oracle/scramble (the arbitrary initial states the
  /// stabilization theorems quantify over).
  std::optional<oracle::ScrambleOptions> scramble;

  /// CheckInvariants — run the legal-state oracle at phase end and record
  /// its summary in the report (implied for every phase by
  /// ScenarioSpec::oracle). When the phase also waits for convergence, the
  /// wait predicate additionally requires zero oracle violations.
  bool check_invariants = false;

  PublishLoad publish;

  /// Scheduler budget executed after the actions (rounds, or async steps
  /// when the spec selects Scheduler::kAsync).
  std::size_t run = 0;

  /// After the budget, keep scheduling until the system is converged
  /// (legitimate topology + publication agreement in single-topic mode;
  /// consistent, complete per-topic databases + publication agreement in
  /// multi-topic mode).
  bool converge = false;
  /// Round budget for the convergence wait.
  std::size_t max_rounds = 20000;
};

/// A complete declarative scenario.
struct ScenarioSpec {
  std::string name = "unnamed";
  std::uint64_t seed = 1;
  /// Initial client population size (phase 0 usually joins them).
  std::size_t nodes = 32;

  Mode mode = Mode::kSingleTopic;

  /// How the scenario executes: scheduler flavor, worker count, timed
  /// link model (execution.hpp). Consolidated so the tools validate flag
  /// combinations through one library-level rule set.
  ExecutionSpec exec;

  // ---- multi-topic shape ----------------------------------------------
  std::size_t supervisors = 1;       ///< initial supervisor-group size
  std::size_t topics = 0;            ///< topic universe [1, topics]
  std::size_t topics_per_client = 1; ///< subscriptions per joining client
  int virtual_nodes = 32;            ///< SupervisorGroup ring points

  /// Failure-detector delay in rounds at scenario start.
  sim::Round fd_delay = 0;

  /// Snapshot cadence in rounds (0 = never). When set, every alive node
  /// serializes its protocol state (encode_state) every this-many rounds;
  /// ChurnWave::recoveries restarts crashed nodes from the snapshot,
  /// which is up to `snapshot_every` rounds stale by construction.
  sim::Round snapshot_every = 0;

  /// Run the invariant oracle after every phase (see Phase::check_invariants).
  bool oracle = false;

  /// Ring-buffer capacity of the per-round telemetry probe (reports gain a
  /// `timeseries` section holding the last this-many rounds). 0 disables
  /// sampling. The sampled fields are thread-invariant, so the section is
  /// byte-identical across worker counts.
  std::size_t timeseries_capacity = 512;

  pubsub::PubSubConfig pubsub;

  std::vector<Phase> phases;
};

}  // namespace ssps::scenario
