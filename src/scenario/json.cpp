#include "scenario/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace ssps::scenario {

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  SSPS_ASSERT_MSG(kind_ == Kind::kObject, "Json::operator[]: not an object");
  return object_[key];
}

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  SSPS_ASSERT_MSG(kind_ == Kind::kArray, "Json::push_back: not an array");
  array_.push_back(std::move(v));
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray:
      return array_.size();
    case Kind::kObject:
      return object_.size();
    default:
      return 0;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

void Json::write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void Json::write_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; reports must stay loadable
    out += "null";
    return;
  }
  // DBL_MAX under "%.6f" needs ~316 chars; size for the worst case so
  // large metrics are never silently truncated.
  char buf[352];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent * (depth + 1)) : 0, ' ');
  const std::string close_pad(indent > 0 ? static_cast<std::size_t>(indent * depth) : 0, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Kind::kUint: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    }
    case Kind::kDouble:
      write_double(out, double_);
      break;
    case Kind::kString:
      write_escaped(out, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[";
      bool first = true;
      for (const Json& v : array_) {
        if (!first) out += ",";
        first = false;
        out += nl;
        out += pad;
        v.write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += "]";
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += "{";
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ",";
        first = false;
        out += nl;
        out += pad;
        write_escaped(out, k);
        out += colon;
        v.write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out += "}";
      break;
    }
  }
}

}  // namespace ssps::scenario
