// Minimal deterministic JSON document builder.
//
// The scenario engine's contract is that one (spec, seed) pair produces a
// bit-identical metrics report, so this writer is deliberately boring:
// objects keep their keys sorted (std::map), integers are emitted exactly,
// and doubles are formatted with a fixed "%.6f"-style conversion. No
// parsing, no external dependency — reports are write-only artifacts
// consumed by scripts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ssps::scenario {

/// A JSON value: null, bool, integer, double, string, array or object.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                    // NOLINT
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}              // NOLINT
  Json(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}           // NOLINT
  Json(int v) : kind_(Kind::kInt), int_(v) {}                       // NOLINT
  Json(unsigned v) : kind_(Kind::kUint), uint_(v) {}                // NOLINT
  Json(double v) : kind_(Kind::kDouble), double_(v) {}              // NOLINT
  Json(const char* s) : kind_(Kind::kString), string_(s) {}         // NOLINT
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT

  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }

  /// Object member access; creates the member (and converts a null value
  /// into an object) on first use.
  Json& operator[](const std::string& key);

  /// Appends to an array (converts a null value into an array).
  void push_back(Json v);

  std::size_t size() const;

  /// Serializes the document. `indent` = 0 gives compact one-line output;
  /// otherwise members are pretty-printed with `indent` spaces per level.
  std::string dump(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;
  static void write_escaped(std::string& out, const std::string& s);
  static void write_double(std::string& out, double v);

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace ssps::scenario
