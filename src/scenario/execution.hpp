// ExecutionSpec: how a scenario executes, separated from what it does.
//
// One struct names the scheduler flavor (rounds, async steps, timed
// intervals), the round-scheduler worker count and the timed link model,
// and owns the flag-combination rules the tools used to re-implement ad
// hoc: validate() is the single place that knows which combinations are
// contradictory, so ssps_run and ssps_sweep reject them identically
// (exit 2) before any work happens.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "sim/link.hpp"

namespace ssps::scenario {

/// Scheduler flavor used for the phase budgets.
enum class Scheduler {
  kRounds,  ///< synchronous rounds (run_round)
  kAsync,   ///< randomized asynchronous steps (step); budgets are steps
  /// Event-driven virtual clock with per-link latency/loss/duplication/
  /// reordering (sim/link.hpp). Budgets count one-second intervals, so
  /// phase durations and latency percentiles read as virtual seconds.
  kTimed,
};

struct ExecutionSpec {
  Scheduler scheduler = Scheduler::kRounds;

  /// Round-scheduler worker count (1 = serial). Any value produces the
  /// same report byte-for-byte apart from the recorded `threads` header
  /// field (sched/parallel.hpp); only wall-clock changes. Ignored by the
  /// async and timed schedulers (both are single-threaded by contract) —
  /// a spec-authored combination is tolerated, but validate() rejects it
  /// when a user asks for it explicitly (see below).
  unsigned threads = 1;

  /// Link latency/fault model for Scheduler::kTimed (ignored otherwise).
  /// The default — constant one-second latency, zero faults — reproduces
  /// the round scheduler's reports byte-for-byte (minus clock labels).
  sim::TimedConfig timed;

  /// A send/deliver event trace (sim/trace.hpp) will be attached to the
  /// run. Tracing attributes sends to the acting node through a single
  /// slot, so it is serial-only.
  bool trace = false;

  /// Checks the combination for contradictions; returns a human-readable
  /// reason, or nullopt when valid. The rules intentionally cover only
  /// what a user can ask for: a trace or the timed scheduler combined
  /// with a worker pool. Tools report the reason and exit 2.
  std::optional<std::string> validate() const;
};

/// Installs a named per-link latency profile into `exec.timed` (replacing
/// any previous link model) and selects the timed scheduler:
///   default  constant 1 s (round-equivalent channel)
///   lan      uniform 1-5 ms, one zone
///   wan      lognormal ~80 ms median, one zone
///   geo      3 zones: constant 50 ms local, uniform 0.1-0.8 s cross-zone
/// Returns false (leaving `exec` untouched) for an unknown name.
bool apply_latency_profile(ExecutionSpec& exec, std::string_view profile);

}  // namespace ssps::scenario
