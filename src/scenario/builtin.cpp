#include "scenario/builtin.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ssps::scenario {

namespace {

std::size_t at_least(std::size_t v, std::size_t floor_) { return std::max(v, floor_); }

/// One supervised ring living its whole life: bootstrap, a steady-state
/// maintenance window, then a publish burst. The baseline every other
/// scenario is compared against.
ScenarioSpec steady(std::uint64_t seed, std::size_t nodes) {
  ScenarioSpec spec;
  spec.name = "steady";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kSingleTopic;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase steady_window;
  steady_window.name = "steady";
  steady_window.run = 50;
  steady_window.converge = true;
  spec.phases.push_back(steady_window);

  Phase burst;
  burst.name = "publish-burst";
  burst.publish.count = at_least(nodes / 4, 4);
  burst.publish.gap = 1;
  burst.converge = true;
  spec.phases.push_back(burst);
  return spec;
}

/// Waves of join/leave/crash churn over a sharded multi-topic deployment,
/// including one supervisor crash and one supervisor join — the PSVR-style
/// stabilization-under-churn evaluation plus consistent-hashing arc
/// rebalancing.
ScenarioSpec churn_wave(std::uint64_t seed, std::size_t nodes) {
  ScenarioSpec spec;
  spec.name = "churn-wave";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kMultiTopic;
  spec.supervisors = 3;
  spec.topics = at_least(nodes / 4, 4);
  spec.topics_per_client = 2;
  spec.fd_delay = 2;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase seed_pubs;
  seed_pubs.name = "seed-publications";
  seed_pubs.publish.count = at_least(nodes / 2, 4);
  seed_pubs.converge = true;
  spec.phases.push_back(seed_pubs);

  Phase wave1;
  wave1.name = "wave-1";
  wave1.churn.joins = at_least(nodes / 4, 2);
  wave1.churn.leaves = at_least(nodes / 8, 1);
  wave1.churn.crashes = at_least(nodes / 8, 1);
  wave1.converge = true;
  spec.phases.push_back(wave1);

  Phase sup_crash;
  sup_crash.name = "supervisor-crash";
  sup_crash.crash_supervisors = 1;
  sup_crash.converge = true;
  spec.phases.push_back(sup_crash);

  Phase sup_join;
  sup_join.name = "supervisor-join";
  sup_join.add_supervisors = 1;
  sup_join.converge = true;
  spec.phases.push_back(sup_join);

  Phase wave2;
  wave2.name = "wave-2";
  wave2.set_fd_delay = 6;  // degraded detector during the second wave
  wave2.churn.joins = at_least(nodes / 8, 1);
  wave2.churn.crashes = at_least(nodes / 8, 1);
  wave2.converge = true;
  spec.phases.push_back(wave2);
  return spec;
}

/// Flash crowd: a sharded deployment at rest, then every client subscribes
/// to one hot topic at once and a publish burst hits it.
ScenarioSpec flash_crowd(std::uint64_t seed, std::size_t nodes) {
  constexpr TopicId kHotTopic = 1;
  ScenarioSpec spec;
  spec.name = "flash-crowd";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kMultiTopic;
  spec.supervisors = 2;
  spec.topics = at_least(nodes / 2, 8);
  spec.topics_per_client = 1;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase flash;
  flash.name = "flash";
  flash.flash_crowd_topic = kHotTopic;
  flash.converge = true;
  spec.phases.push_back(flash);

  Phase burst;
  burst.name = "hot-burst";
  burst.publish.count = at_least(nodes / 2, 8);
  burst.publish.topic = kHotTopic;
  burst.publish.gap = 1;
  burst.converge = true;
  spec.phases.push_back(burst);
  return spec;
}

/// Zipf-skewed topic publication workload (the VCube-PS evaluation shape):
/// most publications hit a few hot topics; per-supervisor load and
/// per-topic fan-out are the quantities of interest.
ScenarioSpec zipf_topics(std::uint64_t seed, std::size_t nodes) {
  ScenarioSpec spec;
  spec.name = "zipf-topics";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kMultiTopic;
  spec.supervisors = 3;
  spec.topics = at_least(nodes, 8);
  spec.topics_per_client = 3;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase workload;
  workload.name = "zipf-workload";
  workload.publish.count = at_least(2 * nodes, 16);
  workload.publish.zipf_s = 1.2;
  workload.publish.gap = 1;
  workload.converge = true;
  spec.phases.push_back(workload);
  return spec;
}

/// Split-brain partition plus adversarial corruption: the hardest recovery
/// drill the chaos layer offers, measured phase by phase.
ScenarioSpec partition_drill(std::uint64_t seed, std::size_t nodes) {
  ScenarioSpec spec;
  spec.name = "partition-drill";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kSingleTopic;
  spec.fd_delay = 4;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase pubs;
  pubs.name = "seed-publications";
  pubs.publish.count = at_least(nodes / 4, 3);
  pubs.converge = true;
  spec.phases.push_back(pubs);

  Phase partition;
  partition.name = "split-brain";
  partition.split_brain = true;
  partition.converge = true;
  spec.phases.push_back(partition);

  Phase aftershock;
  aftershock.name = "chaos-aftershock";
  core::ChaosOptions chaos;
  chaos.seed = seed * 31 + 7;
  aftershock.chaos = chaos;
  aftershock.converge = true;
  spec.phases.push_back(aftershock);

  Phase crashes;
  crashes.name = "crash-minimum";
  crashes.set_fd_delay = 2;
  crashes.churn.crashes = at_least(nodes / 6, 1);
  crashes.churn.crash_min_label = true;
  crashes.converge = true;
  spec.phases.push_back(crashes);
  return spec;
}

// ---- timed family ---------------------------------------------------
// Event-driven virtual-clock scenarios (Scheduler::kTimed): per-link
// latency distributions, seeded faults and partition schedules replace the
// round model's idealized channel. Durations and latency percentiles in
// their reports read as virtual seconds.

/// Three-zone geo deployment: same-rack links at a constant 50 ms,
/// cross-zone links uniform in 100–800 ms. After seeding publications the
/// link between zones 0 and 1 is cut for 20 virtual seconds, then heals —
/// the recovery wait and the closing burst measure stabilization time in
/// seconds.
ScenarioSpec geo_steady(std::uint64_t seed, std::size_t nodes) {
  ScenarioSpec spec;
  spec.name = "geo-steady";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kSingleTopic;
  spec.fd_delay = 4;
  apply_latency_profile(spec.exec, "geo");

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase pubs;
  pubs.name = "seed-publications";
  pubs.publish.count = at_least(nodes / 4, 3);
  pubs.converge = true;
  spec.phases.push_back(pubs);

  Phase cut;
  cut.name = "zone-partition";
  sim::PartitionWindow window;
  window.from_s = 0;
  window.to_s = 20;
  window.zone_a = 0;
  window.zone_b = 1;
  cut.partitions.push_back(window);
  cut.run = 20;  // ride out the cut; the convergence wait starts healed
  cut.converge = true;
  spec.phases.push_back(cut);

  Phase burst;
  burst.name = "healed-burst";
  burst.publish.count = at_least(nodes / 4, 3);
  burst.publish.gap = 1;
  burst.converge = true;
  spec.phases.push_back(burst);
  return spec;
}

/// Lossy wide-area churn: every link drops 5% of messages, duplicates 1%
/// and reorders 2% on top of a jittery 20–250 ms latency, while a churn
/// wave runs. The self-stabilizing timeouts must recover everything the
/// link layer eats.
ScenarioSpec lossy_churn(std::uint64_t seed, std::size_t nodes) {
  ScenarioSpec spec;
  spec.name = "lossy-churn";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kSingleTopic;
  spec.exec.scheduler = Scheduler::kTimed;
  spec.fd_delay = 4;  // a lost heartbeat must not evict instantly
  spec.exec.timed.local.latency = {sim::LatencySpec::Dist::kUniform, 0.02, 0.25};
  spec.exec.timed.local.loss = 0.05;
  spec.exec.timed.local.duplicate = 0.01;
  spec.exec.timed.local.reorder = 0.02;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase pubs;
  pubs.name = "seed-publications";
  pubs.publish.count = at_least(nodes / 4, 3);
  pubs.converge = true;
  spec.phases.push_back(pubs);

  Phase wave;
  wave.name = "churn-wave";
  wave.churn.joins = at_least(nodes / 8, 1);
  wave.churn.leaves = at_least(nodes / 8, 1);
  wave.churn.crashes = at_least(nodes / 8, 1);
  wave.converge = true;
  spec.phases.push_back(wave);

  Phase burst;
  burst.name = "lossy-burst";
  burst.publish.count = at_least(nodes / 4, 3);
  burst.publish.gap = 1;
  burst.converge = true;
  spec.phases.push_back(burst);
  return spec;
}

/// Survive the wire: lossy-churn's jittery links plus a corrupting channel
/// (2% of messages are bit-flipped/truncated/spliced in flight and must be
/// caught — or survived — by the wire codec) and a crash-recovery wave:
/// crashed nodes restart from periodic snapshots that are stale by up to
/// the snapshot cadence, then re-stabilize oracle-green.
ScenarioSpec chaos_churn(std::uint64_t seed, std::size_t nodes) {
  ScenarioSpec spec;
  spec.name = "chaos-churn";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kSingleTopic;
  spec.exec.scheduler = Scheduler::kTimed;
  spec.fd_delay = 4;
  spec.exec.timed.local.latency = {sim::LatencySpec::Dist::kUniform, 0.02, 0.25};
  spec.exec.timed.local.loss = 0.05;
  spec.exec.timed.local.duplicate = 0.01;
  spec.exec.timed.local.reorder = 0.02;
  spec.exec.timed.local.corrupt = 0.02;
  spec.snapshot_every = 5;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase pubs;
  pubs.name = "seed-publications";
  pubs.publish.count = at_least(nodes / 4, 3);
  pubs.converge = true;
  spec.phases.push_back(pubs);

  Phase wave;
  wave.name = "crash-wave";
  wave.churn.joins = at_least(nodes / 8, 1);
  wave.churn.crashes = at_least(nodes / 8, 1);
  wave.converge = true;
  spec.phases.push_back(wave);

  Phase recover;
  recover.name = "recover";
  recover.churn.recoveries = at_least(nodes / 8, 1);
  recover.converge = true;
  spec.phases.push_back(recover);

  Phase burst;
  burst.name = "corrupted-burst";
  burst.publish.count = at_least(nodes / 4, 3);
  burst.publish.gap = 1;
  burst.converge = true;
  spec.phases.push_back(burst);
  return spec;
}

// ---- scale family ---------------------------------------------------
// Large-n workloads (default n = 1024, meant for n up to 4096): the same
// shapes as the small builtins but tuned so the convergence predicates
// stay affordable at thousands of nodes — single ring for steady/churn,
// and a deliberately small topic universe for the flash crowd so per-topic
// rings are big instead of numerous.

ScenarioSpec scale_steady(std::uint64_t seed, std::size_t nodes) {
  ScenarioSpec spec;
  spec.name = "scale-steady";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kSingleTopic;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase steady_window;
  steady_window.name = "steady";
  steady_window.run = 25;
  steady_window.converge = true;
  spec.phases.push_back(steady_window);

  Phase burst;
  burst.name = "publish-burst";
  burst.publish.count = 64;
  burst.converge = true;
  spec.phases.push_back(burst);
  return spec;
}

ScenarioSpec scale_churn(std::uint64_t seed, std::size_t nodes) {
  ScenarioSpec spec;
  spec.name = "scale-churn";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kSingleTopic;
  spec.fd_delay = 2;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase wave1;
  wave1.name = "wave-1";
  wave1.churn.joins = at_least(nodes / 16, 2);
  wave1.churn.leaves = at_least(nodes / 32, 1);
  wave1.churn.crashes = at_least(nodes / 32, 1);
  wave1.converge = true;
  spec.phases.push_back(wave1);

  Phase wave2;
  wave2.name = "wave-2";
  wave2.set_fd_delay = 4;  // degraded detector during the second wave
  wave2.churn.crashes = at_least(nodes / 32, 1);
  wave2.churn.crash_min_label = true;
  wave2.converge = true;
  spec.phases.push_back(wave2);
  return spec;
}

ScenarioSpec scale_flash(std::uint64_t seed, std::size_t nodes) {
  constexpr TopicId kHotTopic = 1;
  ScenarioSpec spec;
  spec.name = "scale-flash";
  spec.seed = seed;
  spec.nodes = nodes;
  spec.mode = Mode::kMultiTopic;
  spec.supervisors = 4;
  spec.topics = 32;
  spec.topics_per_client = 1;

  Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = nodes;
  bootstrap.converge = true;
  spec.phases.push_back(bootstrap);

  Phase flash;
  flash.name = "flash";
  flash.flash_crowd_topic = kHotTopic;
  flash.converge = true;
  spec.phases.push_back(flash);

  Phase burst;
  burst.name = "hot-burst";
  burst.publish.count = 64;
  burst.publish.topic = kHotTopic;
  burst.converge = true;
  spec.phases.push_back(burst);
  return spec;
}

/// Single registry: name -> factory. --list, is_builtin and
/// builtin_scenario all read this table, so a new scenario is one entry.
struct BuiltinEntry {
  const char* name;
  ScenarioSpec (*make)(std::uint64_t seed, std::size_t nodes);
  /// Population used when the caller does not specify one.
  std::size_t default_nodes;
};

constexpr BuiltinEntry kBuiltins[] = {
    {"steady", steady, 32},
    {"churn-wave", churn_wave, 32},
    {"flash-crowd", flash_crowd, 32},
    {"zipf-topics", zipf_topics, 32},
    {"partition-drill", partition_drill, 32},
    {"geo-steady", geo_steady, 32},
    {"lossy-churn", lossy_churn, 32},
    {"chaos-churn", chaos_churn, 32},
    {"scale-steady", scale_steady, 1024},
    {"scale-churn", scale_churn, 1024},
    {"scale-flash", scale_flash, 1024},
};

}  // namespace

std::vector<std::string> builtin_names() {
  std::vector<std::string> names;
  for (const BuiltinEntry& entry : kBuiltins) names.emplace_back(entry.name);
  return names;
}

bool is_builtin(const std::string& name) {
  for (const BuiltinEntry& entry : kBuiltins) {
    if (name == entry.name) return true;
  }
  return false;
}

ScenarioSpec builtin_scenario(const std::string& name, std::uint64_t seed,
                              std::size_t nodes) {
  for (const BuiltinEntry& entry : kBuiltins) {
    if (name == entry.name) {
      return entry.make(seed, nodes == 0 ? entry.default_nodes : nodes);
    }
  }
  SSPS_ASSERT_MSG(false, "unknown built-in scenario name");
  return {};
}

std::size_t builtin_default_nodes(const std::string& name) {
  for (const BuiltinEntry& entry : kBuiltins) {
    if (name == entry.name) return entry.default_nodes;
  }
  return 32;
}

ScenarioSpec scrambled_variant(ScenarioSpec spec) {
  SSPS_ASSERT_MSG(!spec.phases.empty(), "scrambled_variant: spec has no phases");
  spec.name += "-scrambled";
  spec.oracle = true;

  Phase scramble;
  scramble.name = "scramble";
  oracle::ScrambleOptions options;
  // Decorrelate from the scheduler/runner streams, which consume the raw
  // spec seed.
  options.seed = spec.seed * 0x9e3779b97f4a7c15ULL + 0x5ca91b1e5ca91b1eULL;
  scramble.scramble = options;
  scramble.converge = true;
  spec.phases.insert(spec.phases.begin() + 1, std::move(scramble));
  return spec;
}

}  // namespace ssps::scenario
