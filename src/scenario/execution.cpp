#include "scenario/execution.hpp"

namespace ssps::scenario {

std::optional<std::string> ExecutionSpec::validate() const {
  if (trace && threads != 1) {
    return "an event trace requires threads 1 (tracing is serial-only)";
  }
  if (scheduler == Scheduler::kTimed && threads != 1) {
    return "the timed scheduler is single-threaded; requires threads 1";
  }
  return std::nullopt;
}

bool apply_latency_profile(ExecutionSpec& exec, std::string_view profile) {
  using sim::LatencySpec;
  sim::TimedConfig timed;
  if (profile == "default") {
    // Constant 1 s: the round-equivalent channel.
  } else if (profile == "lan") {
    timed.local.latency = {LatencySpec::Dist::kUniform, 0.001, 0.005};
  } else if (profile == "wan") {
    // exp(-2.5) ~ 82 ms median with a heavy-ish tail.
    timed.local.latency = {LatencySpec::Dist::kLognormal, -2.5, 0.5};
  } else if (profile == "geo") {
    timed.zones = 3;
    timed.local.latency = {LatencySpec::Dist::kConstant, 0.05, 0.0};
    timed.remote.latency = {LatencySpec::Dist::kUniform, 0.1, 0.8};
  } else {
    return false;
  }
  exec.scheduler = Scheduler::kTimed;
  exec.timed = timed;
  return true;
}

}  // namespace ssps::scenario
