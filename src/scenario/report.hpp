// Machine-readable scenario results.
//
// A ScenarioReport is the engine's only output: per-phase traffic,
// convergence and load samples plus scenario-level totals, serializable to
// deterministic JSON (json.hpp). The same writer backs the bench binaries'
// BENCH_<name>.json artifacts so the performance trajectory accumulates in
// one uniform format.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "scenario/json.hpp"
#include "scenario/spec.hpp"
#include "sim/types.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/round_probe.hpp"

namespace ssps::scenario {

/// Load sample for one supervisor process.
struct SupervisorLoad {
  sim::NodeId node;
  std::uint64_t received = 0;   ///< messages delivered to it this phase
  std::size_t topics = 0;       ///< topics it currently serves (multi mode)
  std::size_t database = 0;     ///< total database tuples across its topics
  double arc_share = 0.0;       ///< fraction of the hash ring it owns
};

/// Result of one invariant-oracle sweep at phase end (src/oracle).
struct OracleSummary {
  std::size_t violations = 0;
  std::size_t checked_nodes = 0;
  std::size_t checked_topics = 0;
  /// Violation count per invariant name (kebab-case, sorted).
  std::map<std::string, std::size_t> by_invariant;
  /// First few violation descriptions (diagnostics; capped).
  std::vector<std::string> details;
};

/// Everything measured over one phase. Under Scheduler::kAsync the two
/// duration fields count async steps instead of rounds.
struct PhaseReport {
  std::string name;
  std::size_t rounds = 0;          ///< scheduler budget consumed (incl. wait)
  bool converged = false;          ///< meaningful when the phase waited
  std::optional<std::size_t> convergence_rounds;

  std::uint64_t messages = 0;      ///< sends during the phase
  std::uint64_t delivered = 0;     ///< deliveries during the phase
  std::uint64_t bytes = 0;         ///< wire bytes sent during the phase
  /// Adversarially injected messages/bytes (chaos junk, scramble garbage).
  std::uint64_t injected = 0;
  std::uint64_t injected_bytes = 0;
  /// Corrupting-link damage this phase (timed scheduler with
  /// LinkProfile::corrupt > 0): messages whose encoded bytes were mangled
  /// in flight, and the subset the wire decoder rejected (with their
  /// original wire bytes). corrupted - rejected messages survived decode
  /// as valid — possibly different — messages and were delivered.
  std::uint64_t corrupted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rejected_bytes = 0;
  /// Crash-recovery lifecycle (ChurnWave::recoveries): nodes restarted
  /// this phase, and how many restored their snapshot cleanly (the rest
  /// restarted from scratch — empty, stale-truncated or corrupted
  /// snapshots all land here).
  std::size_t recovered = 0;
  std::size_t recovered_clean = 0;
  /// Per-action-label (count, bytes) send counters.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> by_label;

  std::size_t alive_nodes = 0;     ///< alive client nodes at phase end
  std::size_t publications = 0;    ///< distinct publications in the system
  std::size_t moved_topics = 0;    ///< topics rehomed by group changes

  std::vector<SupervisorLoad> supervisor_load;
  /// topic -> subscriber count at phase end (multi-topic mode).
  std::map<TopicId, std::size_t> topic_fanout;

  /// Oracle sweep at phase end (present when the oracle ran this phase).
  std::optional<OracleSummary> oracle;
};

/// Delivery-latency distribution over the whole run: publish to each
/// subscriber's first receipt (telemetry/latency.hpp), measured on the
/// scheduler's clock — rounds, async steps, or virtual seconds — named by
/// `unit`. Clock values are thread-invariant, so the section is identical
/// across worker counts.
struct LatencyReport {
  /// Unit of every percentile: "rounds", "steps", or "virtual-seconds".
  std::string unit = "rounds";
  telemetry::Histogram::Summary global;
  /// topic -> summary (multi-topic runs; empty in single-topic mode).
  std::map<std::uint32_t, telemetry::Histogram::Summary> per_topic;
};

/// Health samples from the telemetry::RoundProbe ring buffer (the last
/// ScenarioSpec::timeseries_capacity samples of the run). Round/timed runs
/// sample once per round; async runs sample every AsyncConfig::probe_stride
/// steps, with each sample's `round` field holding the step count.
struct TimeSeriesReport {
  /// Clock the samples' `round` field ticks in: "rounds", "steps", or
  /// "virtual-seconds".
  std::string unit = "rounds";
  std::uint64_t dropped = 0;  ///< samples evicted from the ring
  std::vector<telemetry::RoundSample> samples;
};

/// The full result of one ScenarioRunner::run().
struct ScenarioReport {
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t nodes = 0;
  Mode mode = Mode::kSingleTopic;
  std::size_t supervisors = 0;
  std::size_t topics = 0;
  /// Round-scheduler worker count the run used. The only header field
  /// that may differ between otherwise byte-identical reports (determinism
  /// harnesses strip it before comparing across thread counts).
  unsigned threads = 1;
  /// The clock every duration in the report ticks in: "rounds", "steps"
  /// (async), or "virtual-seconds" (timed). Together with the two section
  /// `unit` fields, the only lines the timed-equivalence harness strips
  /// before comparing timed-default reports against round reports.
  std::string clock = "rounds";

  std::vector<PhaseReport> phases;

  /// Whole-run delivery-latency percentiles (always present; zero counts
  /// when the scenario never published).
  LatencyReport latency;
  /// Per-round time series (present when the spec enabled sampling).
  std::optional<TimeSeriesReport> timeseries;

  bool ok = false;                 ///< every convergence wait succeeded
  /// Every oracle-checked convergence wait ended in a legal state
  /// (vacuously true when the oracle never ran). False means a wait timed
  /// out with invariants still violated — the phase's OracleSummary names
  /// them.
  bool oracle_ok = true;
  std::size_t total_rounds = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;

  Json to_json() const;
};

/// Writes `doc` to `path` (pretty-printed, trailing newline). Returns
/// false and leaves no partial file behind on I/O failure.
bool write_json_file(const std::string& path, const Json& doc);

/// Canonical artifact name for a bench result: "BENCH_<name>.json".
std::string bench_json_path(const std::string& bench_name);

/// Wraps a bench result object ({"bench": name, ...fields}) and writes it
/// to BENCH_<name>.json in the working directory. The bench harness calls
/// this once per binary run.
bool write_bench_json(const std::string& bench_name, Json fields);

}  // namespace ssps::scenario
