// ScenarioRunner: executes a ScenarioSpec against the simulator.
//
// The runner owns the deployment named by the spec — either one
// pubsub::PubSubSystem (single supervised skip ring with Algorithm 5 on
// every subscriber) or a sim::Network holding a consistent-hashing
// SupervisorGroup of MultiTopicSupervisorNodes plus MultiTopicNode
// clients — and drives it phase by phase, sampling metrics around each
// phase into a ScenarioReport. All scenario-level randomness (which node
// crashes, which topic a publication hits) comes from one Rng derived from
// the spec seed, and the simulator's randomness comes from the same seed,
// so a (spec, seed) pair reproduces its report bit-for-bit.
#pragma once

#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "oracle/invariants.hpp"
#include "pubsub/topics.hpp"
#include "scenario/report.hpp"
#include "scenario/spec.hpp"
#include "sim/failure_detector.hpp"
#include "telemetry/round_probe.hpp"
#include "wire/corrupt.hpp"

namespace ssps::scenario {

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);
  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Executes every phase and returns the report (also kept in report()).
  const ScenarioReport& run();

  /// Executes one phase (phases must be run in order; run() is the normal
  /// entry point — this exists for examples that narrate between phases).
  const PhaseReport& run_phase(std::size_t index);

  const ScenarioSpec& spec() const { return spec_; }
  const ScenarioReport& report() const { return report_; }

  /// One full invariant-oracle sweep over the current deployment state
  /// (either mode). The runner calls this at phase end when the spec asks
  /// for it; exposed so tests and tools can interrogate any moment.
  oracle::OracleReport check_oracle();

  /// The engine's convergence predicate (the wait target of
  /// Phase::converge). Multi-topic mode answers from a per-topic verdict
  /// cache keyed on cheap version reads — supervisor db_version, member
  /// overlay state versions, publication-store sizes — re-evaluating a
  /// topic only when its epoch moved, the multi-topic analogue of the
  /// single-ring incremental probe. Exposed (with the exhaustive
  /// reference below) so the differential test can pin their agreement.
  bool converged() const;

  /// Reference implementation of converged(): the full (topic, member)
  /// walk, no caching. Tests assert converged() == converged_reference()
  /// along entire convergence trajectories.
  bool converged_reference() const;

  /// The underlying network (either mode).
  sim::Network& net();

  // ---- single-topic-mode access (aborts in multi-topic mode) -----------
  pubsub::PubSubSystem& single();
  const pubsub::PubSubSystem& single() const;

  // ---- multi-topic-mode access (aborts in single-topic mode) -----------
  const pubsub::SupervisorGroup& group() const;
  /// Supervisors currently in the group, in join order.
  const std::vector<sim::NodeId>& supervisor_ids() const { return sup_ids_; }
  /// Alive clients, in join order.
  const std::vector<sim::NodeId>& client_ids() const { return clients_; }
  /// Current member set of one topic (join order).
  std::vector<sim::NodeId> topic_members(TopicId topic) const;

 private:
  // Phase machinery.
  void apply_fd_delay(sim::Round delay);
  void apply_supervisor_changes(const Phase& phase, PhaseReport& out);
  void apply_churn(const ChurnWave& churn, PhaseReport& out);
  void apply_flash_crowd(TopicId topic);
  void apply_chaos(const Phase& phase);
  void apply_scramble(const Phase& phase);
  void apply_publish(const PublishLoad& load);
  void run_budget(std::size_t budget);
  /// Whether the oracle runs at the end of `phase`.
  bool oracle_enabled(const Phase& phase) const;
  std::size_t wait_converged(std::size_t max_rounds, bool oracle_too,
                             bool& converged_out);
  void sample(const Phase& phase, PhaseReport& out);
  /// The multi-topic deployment as the oracle/injector see it.
  oracle::MultiTopicView multi_view();

  // Single-topic helpers.
  sim::NodeId pick_active_single();

  // Multi-topic helpers.
  sim::NodeId spawn_supervisor();
  void spawn_client();
  void subscribe_client(sim::NodeId client, TopicId topic);
  /// Moves every member of `topic` from `old_owner` to the group's current
  /// owner. Graceful rehoming runs the unsubscribe handshake with the
  /// (alive) old owner; forced rehoming (crashed owner: old_owner is null)
  /// drops the instance outright. Local publication stores survive either
  /// way.
  void rehome_topic(TopicId topic, sim::NodeId old_owner, bool graceful);
  TopicId pick_topic(const PublishLoad& load);
  std::string make_payload(std::size_t payload_bytes);

  ScenarioSpec spec_;
  ScenarioReport report_;
  ssps::Rng rng_;
  std::size_t next_phase_ = 0;
  std::size_t payload_seq_ = 0;

  /// Per-round time-series ring (spec.timeseries_capacity > 0). Attached
  /// to the network right after deployment construction; its enricher
  /// fills the nonconforming count from the mode's convergence probe.
  std::unique_ptr<telemetry::RoundProbe> probe_;

  /// Corrupting-link damage model (wire/corrupt.hpp), installed when a
  /// timed spec sets a nonzero LinkProfile::corrupt on any link class.
  /// Owned here; the network holds a raw pointer for the run's lifetime.
  std::unique_ptr<wire::CodecCorrupter> corrupter_;
  /// Single-topic crash log in crash order; ChurnWave::recoveries
  /// restarts from the front (oldest crash first).
  std::vector<sim::NodeId> crashed_single_;

  // Single-topic deployment.
  std::unique_ptr<pubsub::PubSubSystem> single_;

  // Multi-topic deployment.
  std::unique_ptr<sim::Network> multi_net_;
  std::unique_ptr<sim::FailureDetector> fd_;
  /// Slot handed (by address) to every MultiTopicSupervisorNode.
  const sim::FailureDetector* fd_slot_ = nullptr;
  std::unique_ptr<pubsub::SupervisorGroup> group_;
  std::vector<sim::NodeId> sup_ids_;
  std::vector<sim::NodeId> clients_;
  /// topic -> members in join order (the expected converged fan-out).
  /// Flat tables (common/flat_map.hpp): the convergence probe and the
  /// report sampler iterate every topic, which at the thousand-topic
  /// target must be a linear scan, not a pointer chase.
  FlatMap<TopicId, std::vector<sim::NodeId>> members_;
  /// topic -> publications issued so far (the expected trie size).
  FlatMap<TopicId, std::size_t> pubs_per_topic_;

  /// One member's contribution to a topic's convergence epoch: identity
  /// plus the version pair from MultiTopicNode::topic_epoch (nullopt —
  /// not subscribed — keys as the (~0, 0) sentinel, which a real epoch
  /// never produces: versions grow far slower than 2^64).
  struct MemberEpoch {
    sim::NodeId id;
    std::uint64_t overlay_version = 0;
    std::size_t trie_size = 0;
    bool operator==(const MemberEpoch&) const = default;
  };
  /// Cached verdict for one topic, valid while its key fields — owner,
  /// database epoch, expected publication count, member epochs — are
  /// unchanged. Negative verdicts cache too: a topic that was not
  /// converged and whose state did not move is still not converged.
  struct TopicVerdict {
    bool ok = false;
    sim::NodeId owner;
    std::uint64_t db_version = 0;
    std::size_t want_pubs = 0;
    std::vector<MemberEpoch> members;
  };
  /// The per-topic verdict cache (mutable: converged() is logically
  /// const). Stale entries for emptied topics are simply skipped.
  mutable FlatMap<TopicId, TopicVerdict> verdicts_;
  /// Scratch key rebuilt per probe call (capacity persists).
  mutable std::vector<MemberEpoch> epoch_scratch_;

  bool topic_converged(TopicId topic,
                       const std::vector<sim::NodeId>& members) const;
};

}  // namespace ssps::scenario
