#include "scenario/mc_certify.hpp"

namespace ssps::scenario {

mc::Executor::Options mc_certify_options(std::uint64_t seed,
                                         std::size_t nodes) {
  mc::Executor::Options options;
  options.seed = seed;
  options.nodes = nodes;
  // Same decorrelation as scrambled_variant: the raw seed feeds the
  // network/scheduler streams, the mixed seed feeds the injector.
  options.scramble.seed =
      seed * 0x9e3779b97f4a7c15ULL + 0x5ca91b1e5ca91b1eULL;
  return options;
}

mc::Certificate mc_certify(std::uint64_t seed, std::size_t nodes) {
  return mc::Explorer(mc_certify_options(seed, nodes)).run();
}

}  // namespace ssps::scenario
