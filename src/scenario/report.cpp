#include "scenario/report.hpp"

#include <cstdio>

namespace ssps::scenario {

namespace {

const char* mode_name(Mode mode) {
  return mode == Mode::kSingleTopic ? "single-topic" : "multi-topic";
}

Json phase_to_json(const PhaseReport& p) {
  Json j = Json::object();
  j["name"] = p.name;
  j["rounds"] = static_cast<std::uint64_t>(p.rounds);
  j["converged"] = p.converged;
  if (p.convergence_rounds) {
    j["convergence_rounds"] = static_cast<std::uint64_t>(*p.convergence_rounds);
  }
  j["messages"] = p.messages;
  j["delivered"] = p.delivered;
  j["bytes"] = p.bytes;
  if (p.injected > 0) {
    j["injected"] = p.injected;
    j["injected_bytes"] = p.injected_bytes;
  }
  // Emitted only when the faults actually fired, so reports of scenarios
  // without a corrupting link or recovery wave stay byte-identical.
  if (p.corrupted > 0 || p.rejected > 0) {
    j["corrupted"] = p.corrupted;
    j["rejected"] = p.rejected;
    j["rejected_bytes"] = p.rejected_bytes;
  }
  if (p.recovered > 0) {
    j["recovered"] = static_cast<std::uint64_t>(p.recovered);
    j["recovered_clean"] = static_cast<std::uint64_t>(p.recovered_clean);
  }
  Json labels = Json::object();
  for (const auto& [name, cb] : p.by_label) {
    Json entry = Json::object();
    entry["count"] = cb.first;
    entry["bytes"] = cb.second;
    labels[name] = std::move(entry);
  }
  j["by_label"] = std::move(labels);
  j["alive_nodes"] = static_cast<std::uint64_t>(p.alive_nodes);
  j["publications"] = static_cast<std::uint64_t>(p.publications);
  j["moved_topics"] = static_cast<std::uint64_t>(p.moved_topics);
  Json load = Json::array();
  for (const SupervisorLoad& s : p.supervisor_load) {
    Json entry = Json::object();
    entry["node"] = s.node.value;
    entry["received"] = s.received;
    entry["topics"] = static_cast<std::uint64_t>(s.topics);
    entry["database"] = static_cast<std::uint64_t>(s.database);
    entry["arc_share"] = s.arc_share;
    load.push_back(std::move(entry));
  }
  j["supervisor_load"] = std::move(load);
  if (!p.topic_fanout.empty()) {
    Json fanout = Json::object();
    for (const auto& [topic, subs] : p.topic_fanout) {
      fanout[std::to_string(topic)] = static_cast<std::uint64_t>(subs);
    }
    j["topic_fanout"] = std::move(fanout);
  }
  if (p.oracle) {
    Json oracle = Json::object();
    oracle["violations"] = static_cast<std::uint64_t>(p.oracle->violations);
    oracle["checked_nodes"] = static_cast<std::uint64_t>(p.oracle->checked_nodes);
    oracle["checked_topics"] = static_cast<std::uint64_t>(p.oracle->checked_topics);
    Json by_invariant = Json::object();
    for (const auto& [name, count] : p.oracle->by_invariant) {
      by_invariant[name] = static_cast<std::uint64_t>(count);
    }
    oracle["by_invariant"] = std::move(by_invariant);
    Json details = Json::array();
    for (const std::string& d : p.oracle->details) details.push_back(d);
    oracle["details"] = std::move(details);
    j["oracle"] = std::move(oracle);
  }
  return j;
}

Json summary_to_json(const telemetry::Histogram::Summary& s) {
  Json j = Json::object();
  j["count"] = s.count;
  j["p50"] = s.p50;
  j["p99"] = s.p99;
  j["p999"] = s.p999;
  j["max"] = s.max;
  return j;
}

Json latency_to_json(const LatencyReport& l) {
  Json j = Json::object();
  j["unit"] = l.unit;
  j["global"] = summary_to_json(l.global);
  Json per_topic = Json::object();
  for (const auto& [topic, summary] : l.per_topic) {
    per_topic[std::to_string(topic)] = summary_to_json(summary);
  }
  j["per_topic"] = std::move(per_topic);
  return j;
}

Json timeseries_to_json(const TimeSeriesReport& ts) {
  Json j = Json::object();
  j["unit"] = ts.unit;
  j["dropped"] = ts.dropped;
  Json samples = Json::array();
  for (const telemetry::RoundSample& s : ts.samples) {
    Json entry = Json::object();
    entry["round"] = static_cast<std::uint64_t>(s.round);
    entry["delivered"] = s.delivered;
    entry["timeouts"] = s.timeouts;
    entry["in_flight"] = s.in_flight;
    entry["alive"] = s.alive;
    entry["nonconforming"] = s.nonconforming;
    // pool_reserved_bytes is thread-variant and deliberately omitted.
    samples.push_back(std::move(entry));
  }
  j["samples"] = std::move(samples);
  return j;
}

}  // namespace

Json ScenarioReport::to_json() const {
  Json j = Json::object();
  j["scenario"] = scenario;
  j["seed"] = seed;
  j["nodes"] = static_cast<std::uint64_t>(nodes);
  j["mode"] = mode_name(mode);
  j["supervisors"] = static_cast<std::uint64_t>(supervisors);
  j["topics"] = static_cast<std::uint64_t>(topics);
  j["threads"] = static_cast<std::uint64_t>(threads);
  j["clock"] = clock;
  j["ok"] = ok;
  j["oracle_ok"] = oracle_ok;
  Json totals = Json::object();
  totals["rounds"] = static_cast<std::uint64_t>(total_rounds);
  totals["messages"] = total_messages;
  totals["bytes"] = total_bytes;
  j["totals"] = std::move(totals);
  Json phase_arr = Json::array();
  for (const PhaseReport& p : phases) phase_arr.push_back(phase_to_json(p));
  j["phases"] = std::move(phase_arr);
  j["latency"] = latency_to_json(latency);
  if (timeseries) j["timeseries"] = timeseries_to_json(*timeseries);
  return j;
}

bool write_json_file(const std::string& path, const Json& doc) {
  const std::string text = doc.dump(2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fclose(f) == 0 && ok;  // fclose flushes; a full disk surfaces here
  if (!ok) std::remove(path.c_str());
  return ok;
}

std::string bench_json_path(const std::string& bench_name) {
  return "BENCH_" + bench_name + ".json";
}

bool write_bench_json(const std::string& bench_name, Json fields) {
  fields["bench"] = bench_name;
  return write_json_file(bench_json_path(bench_name), fields);
}

}  // namespace ssps::scenario
