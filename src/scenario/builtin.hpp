// The named scenario library behind `ssps_run --scenario <name>`.
//
//   steady          one ring: bootstrap, steady maintenance, publish burst
//   churn-wave      supervisor group + topics under waves of client churn,
//                   one supervisor crash and one supervisor join (arc
//                   rebalancing), and a failure-detector retune
//   flash-crowd     everyone piles into one hot topic, then a publish burst
//   zipf-topics     Zipf-skewed publication workload over many topics
//   partition-drill split-brain + adversarial corruption recovery drill
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace ssps::scenario {

/// Names of all built-in scenarios, in presentation order.
std::vector<std::string> builtin_names();

/// True if `name` names a built-in scenario.
bool is_builtin(const std::string& name);

/// Builds the named scenario for `nodes` clients under `seed`. Aborts on
/// an unknown name (check is_builtin first when handling user input).
ScenarioSpec builtin_scenario(const std::string& name, std::uint64_t seed,
                              std::size_t nodes);

/// The scrambled-start variant of any scenario: right after the first
/// phase (the bootstrap in every builtin) an InjectArbitraryState phase
/// rebuilds all protocol state arbitrarily (seeded from spec.seed) and
/// waits for re-convergence; the invariant oracle runs every phase. This
/// is the paper's stabilization experiment shape — convergence from
/// adversarially scrambled states certified against the explicit
/// legal-state predicate.
ScenarioSpec scrambled_variant(ScenarioSpec spec);

}  // namespace ssps::scenario
