// The named scenario library behind `ssps_run --scenario <name>`.
//
//   steady          one ring: bootstrap, steady maintenance, publish burst
//   churn-wave      supervisor group + topics under waves of client churn,
//                   one supervisor crash and one supervisor join (arc
//                   rebalancing), and a failure-detector retune
//   flash-crowd     everyone piles into one hot topic, then a publish burst
//   zipf-topics     Zipf-skewed publication workload over many topics
//   partition-drill split-brain + adversarial corruption recovery drill
//   scale-steady    the steady shape at large n (default n = 1024)
//   scale-churn     churn waves + worst-case crash on one large ring
//   scale-flash     flash crowd onto one hot topic among 1024+ clients
#pragma once

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace ssps::scenario {

/// Names of all built-in scenarios, in presentation order.
std::vector<std::string> builtin_names();

/// True if `name` names a built-in scenario.
bool is_builtin(const std::string& name);

/// Builds the named scenario for `nodes` clients under `seed`; nodes == 0
/// selects the scenario's default population (32 for the classic
/// builtins, 1024 for the scale family). Aborts on an unknown name (check
/// is_builtin first when handling user input).
ScenarioSpec builtin_scenario(const std::string& name, std::uint64_t seed,
                              std::size_t nodes);

/// The population builtin_scenario uses for `nodes` == 0.
std::size_t builtin_default_nodes(const std::string& name);

/// The scrambled-start variant of any scenario: right after the first
/// phase (the bootstrap in every builtin) an InjectArbitraryState phase
/// rebuilds all protocol state arbitrarily (seeded from spec.seed) and
/// waits for re-convergence; the invariant oracle runs every phase. This
/// is the paper's stabilization experiment shape — convergence from
/// adversarially scrambled states certified against the explicit
/// legal-state predicate.
ScenarioSpec scrambled_variant(ScenarioSpec spec);

}  // namespace ssps::scenario
