// Executable legal-state predicates for the supervised skip ring and the
// topic-sharded pub-sub deployment.
//
// The checkers are layered along the protocol stack and each layer scans
// exhaustively (no first-failure bailout, unlike
// SkipRingSystem::legitimacy_violation):
//
//   supervisor-view    database legality + live coverage     (§3.1/§3.3/§4.1)
//   ring-order         sorted ring edges, closure at extremes (Definition 2)
//   ring-connectivity  the ring graph is one component        (Lemma 4)
//   shortcut-closure   dyadic mirror-chain shortcut tables    (Theorem 5)
//   trie-shape         Merkle Patricia well-formedness        (§4.2)
//   trie-agreement     identical publication sets             (Theorem 17)
//   topic-placement    consistent-hashing ownership           (§1.3/§4)
//
// A converged system reports zero violations; every class of illegal state
// fires the invariant named for it (tests/oracle pins both directions).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"

#include "core/system.hpp"
#include "oracle/violation.hpp"
#include "pubsub/pubsub_node.hpp"
#include "pubsub/supervisor_group.hpp"
#include "pubsub/topics.hpp"
#include "sim/network.hpp"

namespace ssps::oracle {

/// One supervised ring instance, deployment-agnostic: the single-topic
/// system and every per-topic slice of a multi-topic deployment both
/// project onto this shape.
struct RingView {
  const core::SupervisorProtocol* supervisor = nullptr;
  /// Active members: (node, overlay state), any order.
  std::vector<std::pair<sim::NodeId, const core::SubscriberProtocol*>> members;
  /// Stamped into emitted violations (multi-topic mode).
  std::optional<pubsub::TopicId> topic;
};

/// Overlay-layer invariants (supervisor view, ring order/connectivity,
/// shortcut closure) of one ring instance. Appends to `out`.
void check_ring(const RingView& view, std::vector<Violation>& out);

/// Publication-layer invariants of one ring instance: per-trie shape and
/// cross-member agreement. Appends to `out`.
void check_tries(
    const std::vector<std::pair<sim::NodeId, const pubsub::PatriciaTrie*>>& tries,
    std::optional<pubsub::TopicId> topic, std::vector<Violation>& out);

/// Full sweep of a single supervised skip ring (overlay only).
OracleReport check_system(const core::SkipRingSystem& system);

/// Full sweep of a single-ring pub-sub system (overlay + tries).
OracleReport check_system(const pubsub::PubSubSystem& system);

/// A consistent-hashing multi-topic deployment, as the scenario engine
/// assembles it: the network, the supervisor group with its current member
/// ids, and the expected member set of every topic (ground truth the
/// databases must converge to).
struct MultiTopicView {
  sim::Network* net = nullptr;
  const pubsub::SupervisorGroup* group = nullptr;
  std::vector<sim::NodeId> supervisors;
  FlatMap<pubsub::TopicId, std::vector<sim::NodeId>> members;
};

/// Full sweep of a multi-topic deployment: placement per hash arc, then
/// per-topic ring and trie invariants.
OracleReport check_deployment(const MultiTopicView& view);

}  // namespace ssps::oracle
