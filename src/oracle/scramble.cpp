#include "oracle/scramble.hpp"

#include <algorithm>
#include <set>

#include "pubsub/hash.hpp"
#include "pubsub/topics.hpp"

namespace ssps::oracle {

using core::Label;
using core::LabeledRef;

ArbitraryStateInjector::ArbitraryStateInjector(const ScrambleOptions& options)
    : opt_(options), rng_(options.seed) {}

// ---------------------------------------------------------------------------
// Random state primitives
// ---------------------------------------------------------------------------

Label ArbitraryStateInjector::random_label() {
  // Clamp: Label::kMaxLen bounds what Label can represent, and the shift
  // below needs len < 64.
  const int cap = std::clamp(opt_.max_label_len, 1, Label::kMaxLen);
  const int len = static_cast<int>(rng_.between(1, static_cast<std::uint64_t>(cap)));
  return Label(rng_.below(1ULL << len), len);
}

sim::NodeId ArbitraryStateInjector::random_peer(const std::vector<sim::NodeId>& peers) {
  return peers[rng_.pick_index(peers)];
}

std::optional<LabeledRef> ArbitraryStateInjector::random_slot(
    const std::vector<sim::NodeId>& peers) {
  if (static_cast<int>(rng_.below(100)) < opt_.edge_null_pct) return std::nullopt;
  return LabeledRef{random_label(), random_peer(peers)};
}

// ---------------------------------------------------------------------------
// Per-variable scrambling
// ---------------------------------------------------------------------------

void ArbitraryStateInjector::scramble_overlay(core::SubscriberProtocol& sub,
                                              const std::vector<sim::NodeId>& peers) {
  const int fate = static_cast<int>(rng_.below(100));
  if (fate < opt_.label_null_pct) {
    sub.chaos_set_label(std::nullopt);
  } else if (fate < opt_.label_null_pct + opt_.label_random_pct) {
    sub.chaos_set_label(random_label());
  }
  sub.chaos_set_left(random_slot(peers));
  sub.chaos_set_right(random_slot(peers));
  sub.chaos_set_ring(random_slot(peers));
  sub.chaos_clear_shortcuts();
  const std::uint64_t entries =
      rng_.below(static_cast<std::uint64_t>(opt_.max_shortcuts) + 1);
  for (std::uint64_t i = 0; i < entries; ++i) {
    sub.chaos_put_shortcut(random_label(), random_peer(peers));
  }
}

void ArbitraryStateInjector::scramble_database(core::SupervisorProtocol& sup,
                                               const std::vector<sim::NodeId>& values) {
  sup.chaos_clear();
  if (values.empty()) return;
  // A tuple soup: canonical labels (in and out of range), raw bit strings,
  // null values, duplicated nodes, missing nodes — all §3.1 classes at once.
  const std::uint64_t count = rng_.below(2 * values.size() + 2);
  for (std::uint64_t i = 0; i < count; ++i) {
    const Label label = rng_.chance(1, 2)
                            ? Label::from_index(rng_.below(2 * values.size() + 1))
                            : random_label();
    if (rng_.chance(1, 8)) {
      sup.chaos_insert_null(label);
    } else {
      sup.chaos_insert(label, random_peer(values));
    }
  }
  sup.chaos_set_next(rng_.next());
}

void ArbitraryStateInjector::scramble_trie(pubsub::PubSubProtocol& ps,
                                           const std::vector<sim::NodeId>& peers,
                                           bool keep_all, bool allow_extra) {
  const std::size_t key_bits = ps.trie().key_bits();
  if (!keep_all) {
    switch (rng_.below(3)) {
      case 0:
        break;  // keep the store as-is
      case 1:
        ps.chaos_trie() = pubsub::PatriciaTrie(key_bits);  // wipe
        break;
      case 2: {  // drop to a random subset
        pubsub::PatriciaTrie fresh(key_bits);
        for (const pubsub::Publication& p : ps.trie().all()) {
          if (rng_.chance(1, 2)) fresh.insert(p);
        }
        ps.chaos_trie() = std::move(fresh);
        break;
      }
    }
  }
  if (allow_extra && rng_.chance(1, 3)) {
    // Pre-existing content the rest of the system has never seen; legal on
    // a single ring, where the converged state is the union.
    ps.add_local(pubsub::Publication{
        random_peer(peers), "scramble-" + std::to_string(junk_seq_++), now_});
  }
}

// ---------------------------------------------------------------------------
// Channel garbage
// ---------------------------------------------------------------------------

sim::PooledMsg ArbitraryStateInjector::junk_core(
    sim::MessagePool& pool, const std::vector<sim::NodeId>& peers) {
  const LabeledRef ref{random_label(), random_peer(peers)};
  switch (rng_.below(6)) {
    case 0:
      return pool.make<core::msg::Check>(
          ref, random_label(),
          rng_.chance(1, 2) ? core::IntroFlag::kLinear : core::IntroFlag::kCyclic);
    case 1:
      return pool.make<core::msg::Introduce>(
          ref, rng_.chance(1, 2) ? core::IntroFlag::kLinear : core::IntroFlag::kCyclic);
    case 2:
      return pool.make<core::msg::IntroduceShortcut>(ref);
    case 3:
      return pool.make<core::msg::RemoveConnections>(random_peer(peers));
    case 4: {
      const LabeledRef a{random_label(), random_peer(peers)};
      const LabeledRef b{random_label(), random_peer(peers)};
      return pool.make<core::msg::SetData>(a, random_label(), b);
    }
    default:
      return pool.make<core::msg::SetData>(std::nullopt, std::nullopt, std::nullopt);
  }
}

sim::PooledMsg ArbitraryStateInjector::junk_pubsub(
    sim::MessagePool& pool, const std::vector<sim::NodeId>& peers,
    std::size_t key_bits, bool allow_extra) {
  auto random_summary = [&] {
    const std::size_t bits = rng_.below(std::min<std::size_t>(key_bits, 64) + 1);
    pubsub::Digest digest;
    for (auto& byte : digest) byte = static_cast<std::uint8_t>(rng_.next());
    return pubsub::NodeSummary{pubsub::BitString::from_uint(rng_.next(), bits), digest};
  };
  auto random_summaries = [&] {
    std::vector<pubsub::NodeSummary> tuples;
    const std::uint64_t count = rng_.between(1, 3);
    for (std::uint64_t i = 0; i < count; ++i) tuples.push_back(random_summary());
    return tuples;
  };
  switch (rng_.below(allow_extra ? 4 : 2)) {
    case 0:
      return pool.make<pubsub::msg::CheckTrie>(random_peer(peers),
                                               random_summaries());
    case 1:
      return pool.make<pubsub::msg::CheckAndPublish>(
          random_peer(peers), random_summaries(), random_summary().label);
    case 2: {
      std::vector<pubsub::Publication> pubs;
      pubs.push_back(pubsub::Publication{
          random_peer(peers), "junkpub-" + std::to_string(junk_seq_++), now_});
      return pool.make<pubsub::msg::Publish>(std::move(pubs));
    }
    default:
      return pool.make<pubsub::msg::PublishNew>(pubsub::Publication{
          random_peer(peers), "junkpub-" + std::to_string(junk_seq_++), now_});
  }
}

// ---------------------------------------------------------------------------
// Deployment entry points
// ---------------------------------------------------------------------------

void ArbitraryStateInjector::scramble(core::SkipRingSystem& system) {
  now_ = system.net().round();
  const auto subs = system.subscriber_ids();
  if (subs.empty()) return;
  for (sim::NodeId id : subs) {
    if (system.subscriber(id).phase() == core::SubscriberPhase::kDeparted) continue;
    scramble_overlay(system.subscriber(id), subs);
  }
  if (opt_.databases) scramble_database(system.supervisor(), system.active_ids());
  sim::MessagePool& pool = system.net().pool();
  for (int i = 0; i < opt_.junk_messages; ++i) {
    if (rng_.chance(1, 6)) {
      // Garbage requests into the supervisor's own channel.
      switch (rng_.below(3)) {
        case 0:
          system.net().inject(system.supervisor_id(),
                              pool.make<core::msg::Subscribe>(random_peer(subs)));
          break;
        case 1:
          system.net().inject(system.supervisor_id(),
                              pool.make<core::msg::Unsubscribe>(random_peer(subs)));
          break;
        default:
          system.net().inject(system.supervisor_id(),
                              pool.make<core::msg::GetConfiguration>(
                                  random_peer(subs), random_peer(subs)));
      }
    } else {
      system.net().inject(random_peer(subs), junk_core(pool, subs));
    }
  }
}

void ArbitraryStateInjector::scramble(pubsub::PubSubSystem& system) {
  scramble(static_cast<core::SkipRingSystem&>(system));
  const auto subs = system.subscriber_ids();
  if (subs.empty()) return;
  if (opt_.tries) {
    for (sim::NodeId id : system.active_ids()) {
      scramble_trie(system.pubsub(id), subs, /*keep_all=*/false, /*allow_extra=*/true);
    }
  }
  const std::size_t key_bits = system.pubsub(subs.front()).trie().key_bits();
  for (int i = 0; i < opt_.junk_messages / 2; ++i) {
    system.net().inject(
        random_peer(subs),
        junk_pubsub(system.net().pool(), subs, key_bits, /*allow_extra=*/true));
  }
}

void ArbitraryStateInjector::scramble(const MultiTopicView& view) {
  auto& net = *view.net;
  now_ = net.round();

  // All alive clients, any topic — the model allows a reference to any
  // existing node, so overlay slots may point across topic boundaries
  // (stale traffic is answered by the departed-topic path).
  std::set<sim::NodeId> client_set;
  for (const auto& [topic, members] : view.members) {
    for (sim::NodeId m : members) {
      if (net.alive(m)) client_set.insert(m);
    }
  }
  const std::vector<sim::NodeId> clients(client_set.begin(), client_set.end());
  if (clients.empty()) return;

  std::vector<pubsub::TopicId> topics;
  for (const auto& [topic, members] : view.members) {
    if (members.empty()) continue;
    topics.push_back(topic);

    std::vector<sim::NodeId> live_members;
    for (sim::NodeId m : members) {
      if (net.alive(m) &&
          net.node_as<pubsub::MultiTopicNode>(m).subscribed(topic)) {
        live_members.push_back(m);
      }
    }
    if (live_members.empty()) continue;

    // Per-(client, topic) overlay instances.
    bool first = true;
    for (sim::NodeId m : live_members) {
      auto& node = net.node_as<pubsub::MultiTopicNode>(m);
      if (node.overlay(topic).phase() == core::SubscriberPhase::kDeparted) continue;
      scramble_overlay(node.overlay(topic), clients);
      if (opt_.tries) {
        // Union-preserving: the first member archives the full store so no
        // publication vanishes from the topic system-wide (the multi-topic
        // convergence target counts publications per topic).
        scramble_trie(node.pubsub(topic), clients, /*keep_all=*/first,
                      /*allow_extra=*/false);
      }
      first = false;
    }

    // The arc owner's per-topic database, values drawn from the topic's own
    // members (a tuple for a never-subscribed client could linger forever —
    // nothing in the departure handshake would evict it).
    const sim::NodeId owner = view.group->supervisor_for(topic);
    if (opt_.databases && net.alive(owner)) {
      auto& sup = net.node_as<pubsub::MultiTopicSupervisorNode>(owner);
      scramble_database(sup.topic_supervisor(topic), live_members);
    }
  }
  if (topics.empty()) return;

  const std::size_t key_bits = [&] {
    for (pubsub::TopicId topic : topics) {
      for (sim::NodeId m : view.members.at(topic)) {
        if (!net.alive(m)) continue;
        auto& node = net.node_as<pubsub::MultiTopicNode>(m);
        if (node.subscribed(topic)) return node.pubsub(topic).trie().key_bits();
      }
    }
    return std::size_t{64};
  }();

  for (int i = 0; i < opt_.junk_messages; ++i) {
    const pubsub::TopicId topic = topics[rng_.pick_index(topics)];
    const auto& members = view.members.at(topic);
    const sim::NodeId owner = view.group->supervisor_for(topic);
    if (rng_.chance(1, 6) && net.alive(owner) && !members.empty()) {
      // Garbage requests at the owning supervisor. Subscribe junk stays
      // scoped to the topic's own members: the group realization has no
      // mechanism for a non-owner to disown a subscriber, so cross-topic
      // Subscribe forgeries are outside the recoverable state space.
      sim::PooledMsg inner;
      switch (rng_.below(3)) {
        case 0:
          inner = net.pool().make<core::msg::Subscribe>(random_peer(members));
          break;
        case 1:
          inner = net.pool().make<core::msg::Unsubscribe>(random_peer(members));
          break;
        default:
          inner = net.pool().make<core::msg::GetConfiguration>(random_peer(members),
                                                               random_peer(members));
      }
      net.inject(owner,
                 net.pool().make<pubsub::TopicEnvelope>(topic, std::move(inner)));
      continue;
    }
    // Enveloped garbage at a random client — possibly for a topic it never
    // joined, exercising the departed-topic reply path.
    sim::PooledMsg inner =
        rng_.chance(1, 3)
            ? junk_pubsub(net.pool(), clients, key_bits, /*allow_extra=*/false)
            : junk_core(net.pool(), clients);
    net.inject(random_peer(clients),
               net.pool().make<pubsub::TopicEnvelope>(topic, std::move(inner)));
  }
}

}  // namespace ssps::oracle
