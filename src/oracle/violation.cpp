#include "oracle/violation.hpp"

#include <sstream>

namespace ssps::oracle {

const char* invariant_name(Invariant inv) {
  switch (inv) {
    case Invariant::kRingOrder:
      return "ring-order";
    case Invariant::kRingConnectivity:
      return "ring-connectivity";
    case Invariant::kShortcutClosure:
      return "shortcut-closure";
    case Invariant::kSupervisorView:
      return "supervisor-view";
    case Invariant::kTrieShape:
      return "trie-shape";
    case Invariant::kTrieAgreement:
      return "trie-agreement";
    case Invariant::kTopicPlacement:
      return "topic-placement";
  }
  return "unknown";
}

const char* invariant_reference(Invariant inv) {
  switch (inv) {
    case Invariant::kRingOrder:
      return "Definition 2 / §2.2 (sorted ring with cyclic closure)";
    case Invariant::kRingConnectivity:
      return "Lemma 4 (one ring, not several)";
    case Invariant::kShortcutClosure:
      return "Theorem 5 / §3.2.2 (dyadic mirror-chain shortcuts)";
    case Invariant::kSupervisorView:
      return "§3.1, §3.3, §4.1 (database legality and live coverage)";
    case Invariant::kTrieShape:
      return "§4.2 / Figure 2 (Merkle-hashed Patricia trie)";
    case Invariant::kTrieAgreement:
      return "Theorem 17 (all tries hold the publication union)";
    case Invariant::kTopicPlacement:
      return "§1.3 / §4 (consistent-hashing topic ownership)";
  }
  return "";
}

std::string Violation::to_string() const {
  std::ostringstream out;
  out << "[" << invariant_name(invariant) << "]";
  if (topic) out << " topic " << *topic;
  if (node) out << " node " << node.value;
  out << ": " << detail;
  return out.str();
}

std::map<std::string, std::size_t> OracleReport::count_by_invariant() const {
  std::map<std::string, std::size_t> counts;
  for (const Violation& v : violations) counts[invariant_name(v.invariant)] += 1;
  return counts;
}

std::string OracleReport::summary(std::size_t max_details) const {
  std::ostringstream out;
  out << violations.size() << " violation(s) over " << checked_nodes
      << " node state(s)";
  if (checked_topics > 0) out << ", " << checked_topics << " topic(s)";
  if (!violations.empty()) {
    out << ":";
    for (const auto& [name, count] : count_by_invariant()) {
      out << " " << name << "=" << count;
    }
    const std::size_t shown = std::min(max_details, violations.size());
    for (std::size_t i = 0; i < shown; ++i) {
      out << "\n  " << violations[i].to_string();
    }
    if (shown < violations.size()) {
      out << "\n  ... " << (violations.size() - shown) << " more";
    }
  }
  return out.str();
}

}  // namespace ssps::oracle
