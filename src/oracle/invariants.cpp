#include "oracle/invariants.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/skip_ring_spec.hpp"

namespace ssps::oracle {

namespace {

using core::Label;
using core::LabeledRef;
using core::SubscriberProtocol;

std::string label_str(const Label& l) { return l.to_string(); }

std::string opt_ref_str(const std::optional<LabeledRef>& r) {
  if (!r) return "(none)";
  return label_str(r->label) + "@" + std::to_string(r->node.value);
}

void emit(std::vector<Violation>& out, Invariant inv, sim::NodeId node,
          std::optional<pubsub::TopicId> topic, std::string detail) {
  out.push_back(Violation{inv, node, topic, std::move(detail)});
}

// ---------------------------------------------------------------------------
// Layer 1: supervisor view (§3.1 database legality + §3.3/§4.1 coverage)
// ---------------------------------------------------------------------------

void check_supervisor_view(const RingView& view, std::vector<Violation>& out) {
  const auto& db = view.supervisor->database();
  const auto topic = view.topic;
  const sim::NodeId sup_node = view.supervisor->self();

  // §3.1 corruption classes, tuple by tuple.
  std::unordered_map<sim::NodeId, std::size_t> copies;
  for (const auto& [label, node] : db) {
    if (!node) {
      emit(out, Invariant::kSupervisorView, sup_node, topic,
           "(i) null tuple at label " + label_str(label));
      continue;
    }
    copies[node] += 1;
    if (!label.is_canonical()) {
      emit(out, Invariant::kSupervisorView, sup_node, topic,
           "(iv) non-canonical label " + label_str(label) + " for node " +
               std::to_string(node.value));
    }
  }
  for (const auto& [node, count] : copies) {
    if (count > 1) {
      emit(out, Invariant::kSupervisorView, sup_node, topic,
           "(ii) node " + std::to_string(node.value) + " recorded " +
               std::to_string(count) + " times");
    }
  }
  for (std::uint64_t i = 0; i < db.size(); ++i) {
    const Label want = Label::from_index(i);
    if (!db.contains(want)) {
      emit(out, Invariant::kSupervisorView, sup_node, topic,
           "(iii)/(iv) label " + label_str(want) + " = l(" + std::to_string(i) +
               ") missing from a database of size " + std::to_string(db.size()));
    }
  }

  // Coverage: database tuples <-> active members, labels agreed.
  std::unordered_map<sim::NodeId, const SubscriberProtocol*> member_of;
  for (const auto& [id, sub] : view.members) member_of.emplace(id, sub);
  for (const auto& [label, node] : db) {
    if (node && !member_of.contains(node)) {
      emit(out, Invariant::kSupervisorView, node, topic,
           "database records node " + std::to_string(node.value) + " at label " +
               label_str(label) + " but it is not an active member");
    }
  }
  for (const auto& [id, sub] : view.members) {
    const auto assigned = view.supervisor->label_of(id);
    if (!assigned) {
      emit(out, Invariant::kSupervisorView, id, topic,
           "active member missing from the database");
      continue;
    }
    if (!sub->label() || !(*sub->label() == *assigned)) {
      emit(out, Invariant::kSupervisorView, id, topic,
           "member label " + (sub->label() ? label_str(*sub->label()) : "(none)") +
               " disagrees with database label " + label_str(*assigned));
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2: ring order (Definition 2) — from subscriber-local state alone
// ---------------------------------------------------------------------------

struct Sorted {
  /// (label, node, state) of every labeled member, ascending by r.
  std::vector<std::tuple<Label, sim::NodeId, const SubscriberProtocol*>> order;
  bool labels_unique = true;
  bool all_labeled = true;
};

Sorted sort_members(const RingView& view, std::vector<Violation>& out) {
  Sorted s;
  for (const auto& [id, sub] : view.members) {
    if (!sub->label()) {
      emit(out, Invariant::kRingOrder, id, view.topic, "member holds no label");
      s.all_labeled = false;
      continue;
    }
    s.order.emplace_back(*sub->label(), id, sub);
  }
  std::sort(s.order.begin(), s.order.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<1>(a) < std::get<1>(b);
  });
  for (std::size_t i = 1; i < s.order.size(); ++i) {
    if (std::get<0>(s.order[i]) == std::get<0>(s.order[i - 1])) {
      s.labels_unique = false;
      emit(out, Invariant::kRingOrder, std::get<1>(s.order[i]), view.topic,
           "label " + label_str(std::get<0>(s.order[i])) + " also held by node " +
               std::to_string(std::get<1>(s.order[i - 1]).value));
    }
  }
  return s;
}

void check_ring_order(const RingView& view, const Sorted& s,
                      std::vector<Violation>& out) {
  const std::size_t n = s.order.size();
  auto expect_slot = [&](sim::NodeId who, const char* what,
                         const std::optional<LabeledRef>& got,
                         std::optional<std::size_t> want_pos) {
    std::optional<LabeledRef> want;
    if (want_pos) {
      want = LabeledRef{std::get<0>(s.order[*want_pos]), std::get<1>(s.order[*want_pos])};
    }
    const bool match = want.has_value() == got.has_value() &&
                       (!want || (got->node == want->node && got->label == want->label));
    if (!match) {
      emit(out, Invariant::kRingOrder, who, view.topic,
           std::string(what) + " is " + opt_ref_str(got) + ", ring order wants " +
               opt_ref_str(want));
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const auto& [label, id, sub] = s.order[i];
    std::optional<std::size_t> left_pos, right_pos, ring_pos;
    if (n > 1) {
      if (i > 0) left_pos = i - 1;
      if (i + 1 < n) right_pos = i + 1;
      if (i == 0) ring_pos = n - 1;
      if (i == n - 1) ring_pos = 0;
    }
    expect_slot(id, "left", sub->left(), left_pos);
    expect_slot(id, "right", sub->right(), right_pos);
    expect_slot(id, "ring", sub->ring(), ring_pos);
  }
}

void check_ring_connectivity(const RingView& view, std::vector<Violation>& out) {
  if (view.members.size() < 2) return;
  std::unordered_map<sim::NodeId, std::vector<sim::NodeId>> adj;
  std::unordered_set<sim::NodeId> ids;
  for (const auto& [id, sub] : view.members) ids.insert(id);
  auto link = [&](sim::NodeId a, const std::optional<LabeledRef>& slot) {
    // Edges leaving the member set are an order-layer problem; connectivity
    // judges the graph induced on the members.
    if (slot && slot->node && ids.contains(slot->node)) {
      adj[a].push_back(slot->node);
      adj[slot->node].push_back(a);
    }
  };
  for (const auto& [id, sub] : view.members) {
    link(id, sub->left());
    link(id, sub->right());
    link(id, sub->ring());
  }
  std::unordered_set<sim::NodeId> seen;
  std::vector<sim::NodeId> queue{view.members.front().first};
  seen.insert(queue.front());
  while (!queue.empty()) {
    const sim::NodeId at = queue.back();
    queue.pop_back();
    for (sim::NodeId next : adj[at]) {
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  if (seen.size() != ids.size()) {
    std::ostringstream why;
    why << "ring edges split the members: " << (ids.size() - seen.size()) << " of "
        << ids.size() << " unreachable from node "
        << view.members.front().first.value;
    emit(out, Invariant::kRingConnectivity, sim::NodeId::null(), view.topic,
         why.str());
  }
}

// ---------------------------------------------------------------------------
// Layer 3: dyadic shortcut closure (Theorem 5)
// ---------------------------------------------------------------------------

void check_shortcut_closure(const RingView& view, const Sorted& s,
                            std::vector<Violation>& out) {
  const std::size_t n = s.order.size();
  if (n == 0 || !s.all_labeled || !s.labels_unique) return;
  // The closure characterization is defined relative to SR(n); if the label
  // set is not exactly {l(0) … l(n−1)} the lower layers have already fired
  // and per-label expectations would only cascade noise. Exact matching
  // (bits and length) — a non-canonical label can share its r-value with a
  // canonical one, and spec.expected() aborts on labels outside SR(n).
  std::map<Label, sim::NodeId> holder;
  for (const auto& [label, id, sub] : s.order) holder.emplace(label, id);
  for (std::size_t i = 0; i < n; ++i) {
    if (!holder.contains(Label::from_index(i))) {
      return;  // label set != SR(n); reported elsewhere
    }
  }

  const core::SkipRingSpec spec(n);
  for (const auto& [label, id, sub] : s.order) {
    const core::NodeSpec& ns = spec.expected(label);
    const auto& sc = sub->shortcuts();
    for (const Label& want : ns.shortcuts) {
      auto jt = sc.find(want);
      if (jt == sc.end()) {
        emit(out, Invariant::kShortcutClosure, id, view.topic,
             "missing shortcut label " + label_str(want));
        continue;
      }
      const sim::NodeId want_node = holder.at(want);
      if (!jt->second) {
        emit(out, Invariant::kShortcutClosure, id, view.topic,
             "shortcut " + label_str(want) + " unresolved (null reference)");
      } else if (jt->second != want_node) {
        emit(out, Invariant::kShortcutClosure, id, view.topic,
             "shortcut " + label_str(want) + " points to node " +
                 std::to_string(jt->second.value) + ", holder is " +
                 std::to_string(want_node.value));
      }
    }
    for (const auto& [have, node] : sc) {
      if (std::find(ns.shortcuts.begin(), ns.shortcuts.end(), have) ==
          ns.shortcuts.end()) {
        emit(out, Invariant::kShortcutClosure, id, view.topic,
             "spurious shortcut label " + label_str(have));
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

void check_ring(const RingView& view, std::vector<Violation>& out) {
  check_supervisor_view(view, out);
  const Sorted s = sort_members(view, out);
  check_ring_order(view, s, out);
  check_ring_connectivity(view, out);
  check_shortcut_closure(view, s, out);
}

void check_tries(
    const std::vector<std::pair<sim::NodeId, const pubsub::PatriciaTrie*>>& tries,
    std::optional<pubsub::TopicId> topic, std::vector<Violation>& out) {
  for (const auto& [id, trie] : tries) {
    const std::string why = trie->check_invariants();
    if (!why.empty()) {
      emit(out, Invariant::kTrieShape, id, topic, why);
    }
  }
  if (tries.size() < 2) return;
  const auto& [ref_id, ref_trie] = tries.front();
  const auto ref_root = ref_trie->root();
  for (std::size_t i = 1; i < tries.size(); ++i) {
    const auto& [id, trie] = tries[i];
    const auto root = trie->root();
    const bool equal = ref_root.has_value() == root.has_value() &&
                       (!ref_root || ref_root->hash == root->hash);
    if (!equal) {
      emit(out, Invariant::kTrieAgreement, id, topic,
           "publication set (" + std::to_string(trie->size()) +
               " entries) differs from node " + std::to_string(ref_id.value) +
               "'s (" + std::to_string(ref_trie->size()) + " entries)");
    }
  }
}

OracleReport check_system(const core::SkipRingSystem& system) {
  OracleReport report;
  RingView view;
  view.supervisor = &system.supervisor();
  for (sim::NodeId id : system.active_ids()) {
    view.members.emplace_back(id, &system.subscriber(id));
  }
  report.checked_nodes = view.members.size();
  check_ring(view, report.violations);
  return report;
}

OracleReport check_system(const pubsub::PubSubSystem& system) {
  OracleReport report = check_system(static_cast<const core::SkipRingSystem&>(system));
  std::vector<std::pair<sim::NodeId, const pubsub::PatriciaTrie*>> tries;
  for (sim::NodeId id : system.active_ids()) {
    tries.emplace_back(id, &system.pubsub(id).trie());
  }
  check_tries(tries, std::nullopt, report.violations);
  return report;
}

OracleReport check_deployment(const MultiTopicView& view) {
  OracleReport report;
  auto& net = *view.net;
  for (const auto& [topic, member_ids] : view.members) {
    if (member_ids.empty()) continue;
    report.checked_topics += 1;

    const sim::NodeId owner = view.group->supervisor_for(topic);
    const core::SupervisorProtocol* proto = nullptr;
    if (!net.alive(owner)) {
      emit(report.violations, Invariant::kTopicPlacement, owner, topic,
           "hash-arc owner is crashed");
    } else {
      proto = net.node_as<pubsub::MultiTopicSupervisorNode>(owner).find_topic(topic);
      if (proto == nullptr) {
        emit(report.violations, Invariant::kTopicPlacement, owner, topic,
             "hash-arc owner serves no instance for this topic");
      }
    }

    RingView ring;
    ring.supervisor = proto;
    ring.topic = topic;
    std::vector<std::pair<sim::NodeId, const pubsub::PatriciaTrie*>> tries;
    for (sim::NodeId m : member_ids) {
      if (!net.alive(m)) {
        emit(report.violations, Invariant::kTopicPlacement, m, topic,
             "recorded member is crashed");
        continue;
      }
      auto& node = net.node_as<pubsub::MultiTopicNode>(m);
      if (!node.subscribed(topic)) {
        emit(report.violations, Invariant::kTopicPlacement, m, topic,
             "recorded member runs no instance for this topic");
        continue;
      }
      if (node.overlay(topic).phase() != core::SubscriberPhase::kActive) {
        emit(report.violations, Invariant::kTopicPlacement, m, topic,
             "recorded member is leaving/departed");
        continue;
      }
      ring.members.emplace_back(m, &node.overlay(topic));
      tries.emplace_back(m, &node.pubsub(topic).trie());
      report.checked_nodes += 1;
    }
    if (proto != nullptr) check_ring(ring, report.violations);
    check_tries(tries, topic, report.violations);
  }

  // No group member other than the arc owner may keep serving a topic.
  for (sim::NodeId sup_id : view.supervisors) {
    if (!net.alive(sup_id)) continue;
    auto& sup = net.node_as<pubsub::MultiTopicSupervisorNode>(sup_id);
    for (const auto& [topic, member_ids] : view.members) {
      if (member_ids.empty() || view.group->supervisor_for(topic) == sup_id) continue;
      const core::SupervisorProtocol* stale = sup.find_topic(topic);
      if (stale != nullptr && stale->size() > 0) {
        emit(report.violations, Invariant::kTopicPlacement, sup_id, topic,
             "non-owner still holds " + std::to_string(stale->size()) +
                 " database tuple(s) for this topic");
      }
    }
  }
  return report;
}

}  // namespace ssps::oracle
