// Structured invariant-violation records — the oracle's output format.
//
// The paper proves convergence into a *legal state*; this module gives
// that predicate an explicit, machine-checkable shape. Checkers
// (invariants.hpp) never assert: they emit one Violation per offending
// (invariant, node[, topic]) so that a single sweep reports the complete
// damage picture, which scenario reports serialize and tests match on.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "pubsub/supervisor_group.hpp"
#include "sim/types.hpp"

namespace ssps::oracle {

/// The legal-state predicates, one per protocol layer.
enum class Invariant : std::uint8_t {
  /// Direct ring edges sorted by label with the cyclic closure edge at the
  /// extremes, labels unique and present (Definition 2, E_R; §2.2).
  kRingOrder,
  /// The graph of direct ring edges connects all active subscribers
  /// (Lemma 4's target: one sorted ring, not several).
  kRingConnectivity,
  /// Every shortcut table holds exactly the dyadic mirror-chain labels and
  /// each resolves to the holder of that label (Theorem 5's stable-state
  /// characterization; §3.2.2).
  kShortcutClosure,
  /// The supervisor database satisfies none of the §3.1 corruption classes,
  /// covers exactly the live active subscribers, and every subscriber holds
  /// the label the database assigns it (§3.1, §3.3, §4.1).
  kSupervisorView,
  /// Every publication store is a well-formed Merkle-hashed Patricia trie
  /// (§4.2, Figure 2).
  kTrieShape,
  /// All subscribers of one topic hold identical publication sets
  /// (Theorem 17's goal state).
  kTrieAgreement,
  /// Every topic is served by the supervisor owning its hash arc and by no
  /// other group member; every recorded member participates (§1.3, §4).
  kTopicPlacement,
};

/// Stable kebab-case identifier (JSON keys, test matching).
const char* invariant_name(Invariant inv);

/// The paper reference backing the predicate (documentation strings).
const char* invariant_reference(Invariant inv);

/// One observed breach of one invariant.
struct Violation {
  Invariant invariant;
  /// The node whose state breaches the predicate (null for system-level
  /// breaches such as a database/member-set size mismatch).
  sim::NodeId node;
  /// Topic the breach belongs to (multi-topic deployments only).
  std::optional<pubsub::TopicId> topic;
  std::string detail;

  std::string to_string() const;
};

/// The result of one full oracle sweep.
struct OracleReport {
  std::vector<Violation> violations;
  std::size_t checked_nodes = 0;   ///< subscriber states examined
  std::size_t checked_topics = 0;  ///< topics examined (multi-topic mode)

  bool ok() const { return violations.empty(); }

  /// Violation count per invariant name (sorted, JSON-ready).
  std::map<std::string, std::size_t> count_by_invariant() const;

  /// Human-readable digest: totals plus the first `max_details` entries.
  std::string summary(std::size_t max_details = 8) const;
};

}  // namespace ssps::oracle
