// Arbitrary-state injection — the adversary of the stabilization theorems.
//
// Self-stabilization (Definition 1) quantifies over *arbitrary* initial
// states. core/chaos perturbs a converged system along tunable percentages;
// this injector goes further and REBUILDS every protocol variable from
// scratch, uniformly at random within the type invariants of the model
// (§1.1: node references denote existing nodes; everything else — labels,
// neighbor slots, shortcut tables, supervisor databases, publication
// stores, channel contents — may hold any value). A converged system is
// not assumed; the result is a genuinely arbitrary configuration from
// which the protocols must re-converge, which the invariant oracle
// (invariants.hpp) then certifies.
//
// Determinism: one ScrambleOptions::seed reproduces the same injected
// state on the same deployment, so scrambled scenario runs stay
// bit-deterministic.
#pragma once

#include <cstdint>

#include "oracle/invariants.hpp"
#include "pubsub/pubsub_node.hpp"

namespace ssps::oracle {

/// Knobs of one arbitrary-state injection.
struct ScrambleOptions {
  std::uint64_t seed = 1;

  /// Per-subscriber label fate, in percent: ⊥ / uniform random bit string
  /// (possibly non-canonical, possibly duplicate); the rest keep theirs.
  int label_null_pct = 15;
  int label_random_pct = 65;

  /// Per neighbor slot (left/right/ring): percent chance of ⊥; otherwise
  /// the slot holds a uniformly random (label, peer) reference.
  int edge_null_pct = 25;

  /// Shortcut tables are cleared and refilled with up to this many
  /// arbitrary (label, peer) entries.
  int max_shortcuts = 4;

  /// Rebuild every supervisor database as an arbitrary tuple soup: random
  /// labels (canonical and not), null values, duplicates, holes.
  bool databases = true;

  /// Publication stores: wipe or drop to random subsets; on single-ring
  /// deployments additionally seed junk publications (the union is the
  /// target state there, so extra content is legal).
  bool tries = true;

  /// Garbage protocol messages injected into random channels.
  int junk_messages = 64;

  /// Length cap for generated labels (bits).
  int max_label_len = 10;
};

/// Scrambles live deployments into arbitrary-but-type-correct states.
class ArbitraryStateInjector {
 public:
  explicit ArbitraryStateInjector(const ScrambleOptions& options);

  /// Overlay + database + channels of one supervised skip ring.
  void scramble(core::SkipRingSystem& system);

  /// Same, plus publication stores and publication-layer channel garbage.
  void scramble(pubsub::PubSubSystem& system);

  /// Every per-topic instance of a multi-topic deployment: each (client,
  /// topic) overlay, each owner's per-topic database, per-topic
  /// publication stores (union-preserving: one member per topic keeps the
  /// full store so no publication is lost system-wide), and enveloped
  /// channel garbage — including traffic for topics the receiver never
  /// joined (the departed-topic path).
  void scramble(const MultiTopicView& view);

 private:
  core::Label random_label();
  sim::NodeId random_peer(const std::vector<sim::NodeId>& peers);
  std::optional<core::LabeledRef> random_slot(const std::vector<sim::NodeId>& peers);
  void scramble_overlay(core::SubscriberProtocol& sub,
                        const std::vector<sim::NodeId>& peers);
  void scramble_database(core::SupervisorProtocol& sup,
                         const std::vector<sim::NodeId>& values);
  /// `allow_extra` permits junk insertions (single-ring semantics).
  void scramble_trie(pubsub::PubSubProtocol& ps,
                     const std::vector<sim::NodeId>& peers, bool keep_all,
                     bool allow_extra);
  sim::PooledMsg junk_core(sim::MessagePool& pool,
                           const std::vector<sim::NodeId>& peers);
  sim::PooledMsg junk_pubsub(sim::MessagePool& pool,
                             const std::vector<sim::NodeId>& peers,
                             std::size_t key_bits, bool allow_extra);

  ScrambleOptions opt_;
  ssps::Rng rng_;
  std::uint64_t junk_seq_ = 0;
  /// Round clock of the deployment being scrambled (set by each entry
  /// point): injected publications are stamped born = now_, so the
  /// latency telemetry measures recovery time from the injection, not a
  /// bogus distance from round 0.
  sim::Round now_ = 0;
};

}  // namespace ssps::oracle
