// Experiment E9 — §1.3: "our network has a better congestion than these
// networks [Chord, skip graphs], as the supervised approach allows a much
// more balanced distribution of these nodes."
//
// Three facets, measured separately (see EXPERIMENTS.md for discussion):
//
//  (a) Dissemination congestion — the system's actual workload is
//      flooding a publication to ALL subscribers (§4.3); each node then
//      receives one copy per incident edge, so the per-node load is its
//      degree. The skip ring's supervised labels give a CONSTANT average
//      degree (Lemma 3) versus Θ(log n) for Chord and skip graphs.
//
//  (b) The balance mechanism — the paper attributes the advantage to the
//      balanced node distribution. We isolate it: Chord with supervised
//      (uniform) positions vs Chord with random positions, same routing.
//
//  (c) Point-to-point greedy relay load — NOT the paper's workload, shown
//      for completeness: the skip ring deliberately concentrates
//      long-range links on old (short-label) nodes ("older and thus more
//      reliable nodes hold more connectivity responsibility", §2.1), so
//      all-pairs unicast funnels through those hubs.
#include <algorithm>
#include <set>

#include "baseline/chord.hpp"
#include "baseline/skipgraph.hpp"
#include "bench_common.hpp"
#include "core/skip_ring_spec.hpp"

namespace {

using namespace ssps;
using namespace ssps::core;

struct LoadStats {
  std::uint64_t max = 0;
  std::uint64_t p99 = 0;
  double mean = 0;
};

LoadStats stats_of(std::vector<std::uint64_t> load) {
  LoadStats out;
  std::uint64_t total = 0;
  for (std::uint64_t l : load) total += l;
  out.mean = load.empty() ? 0 : static_cast<double>(total) / static_cast<double>(load.size());
  std::sort(load.begin(), load.end());
  out.max = load.empty() ? 0 : load.back();
  out.p99 = load.empty() ? 0 : load[(load.size() * 99) / 100];
  return out;
}

LoadStats skip_ring_degrees(std::size_t n) {
  const SkipRingSpec spec(n);
  std::vector<std::uint64_t> degrees;
  degrees.reserve(n);
  for (const Label& l : spec.ring_order()) degrees.push_back(spec.degree(l));
  return stats_of(std::move(degrees));
}

LoadStats chord_degrees(std::size_t n, bool uniform) {
  // Undirected dissemination degree: a flooding node sends/receives along
  // out-fingers AND in-fingers, so count distinct incident neighbors.
  const baseline::ChordRing ring(n, 3, uniform);
  std::vector<std::set<std::size_t>> incident(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t : ring.out_neighbors(i)) {
      incident[i].insert(t);
      incident[t].insert(i);
    }
  }
  std::vector<std::uint64_t> degrees(n, 0);
  for (std::size_t i = 0; i < n; ++i) degrees[i] = incident[i].size();
  return stats_of(std::move(degrees));
}

LoadStats skipgraph_degrees(std::size_t n) {
  const baseline::SkipGraph g(n, 5);
  std::vector<std::uint64_t> degrees(n, 0);
  for (std::size_t i = 0; i < n; ++i) degrees[i] = g.degree(i);
  return stats_of(std::move(degrees));
}

LoadStats skip_ring_unicast(std::size_t n, std::size_t samples, std::uint64_t seed) {
  const SkipRingSpec spec(n);
  const auto& order = spec.ring_order();
  std::vector<std::uint64_t> load(n, 0);
  Rng rng(seed);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t a = static_cast<std::size_t>(rng.below(n));
    std::size_t b = static_cast<std::size_t>(rng.below(n));
    if (a == b) b = (b + 1) % n;
    spec.route(order[a], order[b], &load);
  }
  return stats_of(std::move(load));
}

void print_experiment() {
  const std::size_t samples = 20000;
  {
    Table table({"n", "topology", "max degree", "p99", "mean degree"});
    for (std::size_t n : {256u, 1024u, 4096u}) {
      auto add = [&](const char* name, const LoadStats& s) {
        table.add_row({Table::num(static_cast<std::uint64_t>(n)), name,
                       Table::num(s.max), Table::num(s.p99), Table::num(s.mean, 2)});
      };
      add("skip ring (paper)", skip_ring_degrees(n));
      add("chord (random ids)", chord_degrees(n, false));
      add("skip graph", skipgraph_degrees(n));
    }
    table.print(
        "E9a / §1.3 — dissemination (flooding) congestion = per-node degree "
        "(expect: skip ring mean ~4 constant; chord/skip graph mean ~log n)");
  }
  {
    Table table({"n", "positions", "max relay load", "p99", "mean"});
    for (std::size_t n : {1024u, 4096u}) {
      Rng rng_a(7);
      Rng rng_b(7);
      const baseline::ChordRing random_ids(n, 3, false);
      const baseline::ChordRing uniform_ids(n, 3, true);
      const LoadStats r = stats_of(random_ids.sample_congestion(samples, rng_a));
      const LoadStats u = stats_of(uniform_ids.sample_congestion(samples, rng_b));
      table.add_row({Table::num(static_cast<std::uint64_t>(n)), "random (plain chord)",
                     Table::num(r.max), Table::num(r.p99), Table::num(r.mean, 2)});
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     "balanced (supervised)", Table::num(u.max), Table::num(u.p99),
                     Table::num(u.mean, 2)});
    }
    table.print(
        "E9b / §1.3 — the balance mechanism: identical Chord routing, random "
        "vs supervised-balanced positions (expect: balanced max < random max)");
  }
  {
    Table table({"n", "topology", "max relay load", "p99", "mean"});
    for (std::size_t n : {1024u, 4096u}) {
      Rng rng_c(9);
      Rng rng_g(11);
      const baseline::ChordRing chord(n, 3, false);
      const baseline::SkipGraph graph(n, 5);
      auto add = [&](const char* name, const LoadStats& s) {
        table.add_row({Table::num(static_cast<std::uint64_t>(n)), name,
                       Table::num(s.max), Table::num(s.p99), Table::num(s.mean, 2)});
      };
      add("skip ring (paper)", skip_ring_unicast(n, samples, 13));
      add("chord (random ids)", stats_of(chord.sample_congestion(samples, rng_c)));
      add("skip graph", stats_of(graph.sample_congestion(samples, rng_g)));
    }
    table.print(
        "E9c — all-pairs unicast relay load (NOT the pub-sub workload): the "
        "skip ring funnels long routes through its old short-label hubs — "
        "the deliberate §2.1 trade-off; see EXPERIMENTS.md");
  }
}

void BM_SkipRingRoute(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SkipRingSpec spec(n);
  const auto& order = spec.ring_order();
  Rng rng(1);
  for (auto _ : state) {
    const std::size_t a = static_cast<std::size_t>(rng.below(n));
    std::size_t b = static_cast<std::size_t>(rng.below(n));
    if (a == b) b = (b + 1) % n;
    benchmark::DoNotOptimize(spec.route(order[a], order[b], nullptr));
  }
}
BENCHMARK(BM_SkipRingRoute)->Arg(1024)->Arg(4096);

void BM_ChordRoute(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const baseline::ChordRing chord(n, 3);
  Rng rng(1);
  for (auto _ : state) {
    const std::size_t a = static_cast<std::size_t>(rng.below(n));
    std::size_t b = static_cast<std::size_t>(rng.below(n));
    if (a == b) b = (b + 1) % n;
    benchmark::DoNotOptimize(chord.route(a, b, nullptr));
  }
}
BENCHMARK(BM_ChordRoute)->Arg(1024)->Arg(4096);

}  // namespace

SSPS_BENCH_MAIN("congestion", print_experiment)
