// Simulation-core throughput at scale: rounds/sec, msgs/sec and peak RSS
// for the full stack (BuildSR overlay + Algorithm 5 pub-sub) in
// steady-state maintenance, at n up to 16384. This is the bench behind the
// CI perf-regression gate: BENCH_simcore.json carries one row per n with
// deterministic fields (bootstrap convergence rounds, msgs per round) and
// throughput fields (rounds/sec, msgs/sec) that tools/bench_compare.py
// checks against bench/baselines/.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench_common.hpp"
#include "pubsub/pubsub_node.hpp"

namespace {

using namespace ssps;
using ssps::bench::now_seconds;

std::size_t peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss);
}

struct Cell {
  std::size_t n = 0;
  std::size_t bootstrap_rounds = 0;
  double bootstrap_secs = 0;
  std::uint64_t msgs_per_round = 0;  // deterministic per (seed, n)
  double rounds_per_sec = 0;
  double msgs_per_sec = 0;
  std::size_t peak_rss_kb = 0;
  std::size_t pool_reserved_kb = 0;
};

Cell measure(std::size_t n, std::size_t measure_rounds, int reps,
             unsigned threads = 1) {
  Cell cell;
  cell.n = n;
  pubsub::PubSubSystem sys(core::SkipRingSystem::Options{.seed = 42, .fd_delay = 0});
  if (threads > 1) sys.net().set_threads(threads);
  sys.add_pubsub_subscribers(n);

  double t0 = now_seconds();
  const auto conv = sys.run_until_legit(20000);
  cell.bootstrap_secs = now_seconds() - t0;
  cell.bootstrap_rounds = conv.value_or(0);

  // Steady-state maintenance window; best-of-reps wall time tames noisy
  // shared CI runners, while the message count is bit-deterministic.
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    sys.net().metrics().reset();
    t0 = now_seconds();
    sys.net().run_rounds(measure_rounds);
    const double secs = now_seconds() - t0;
    best = std::min(best, secs);
    cell.msgs_per_round =
        sys.net().metrics().total_delivered() / measure_rounds;
  }
  cell.rounds_per_sec = static_cast<double>(measure_rounds) / best;
  cell.msgs_per_sec =
      static_cast<double>(cell.msgs_per_round) * cell.rounds_per_sec;
  cell.peak_rss_kb = peak_rss_kb();
  cell.pool_reserved_kb = sys.net().pool_reserved_bytes() / 1024;
  return cell;
}

void print_experiment() {
  Table table({"n", "bootstrap rounds", "bootstrap s", "msgs/round", "rounds/sec",
               "msgs/sec", "peak RSS MB", "pool MB"});
  scenario::Json series = scenario::Json::array();
  for (std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    const std::size_t window = n >= 4096 ? 30 : 100;
    const Cell cell = measure(n, window, 3);
    table.add_row({Table::num(static_cast<std::uint64_t>(cell.n)),
                   Table::num(static_cast<std::uint64_t>(cell.bootstrap_rounds)),
                   Table::num(cell.bootstrap_secs, 3),
                   Table::num(cell.msgs_per_round),
                   Table::num(cell.rounds_per_sec, 1),
                   Table::num(cell.msgs_per_sec, 0),
                   Table::num(static_cast<double>(cell.peak_rss_kb) / 1024.0, 1),
                   Table::num(static_cast<double>(cell.pool_reserved_kb) / 1024.0, 1)});
    scenario::Json row = scenario::Json::object();
    row["n"] = static_cast<std::uint64_t>(cell.n);
    row["scheduler"] = "rounds";
    row["bootstrap_rounds"] = static_cast<std::uint64_t>(cell.bootstrap_rounds);
    row["msgs_per_round"] = cell.msgs_per_round;
    row["rounds_per_sec"] = cell.rounds_per_sec;
    row["msgs_per_sec"] = cell.msgs_per_sec;
    row["peak_rss_kb"] = static_cast<std::uint64_t>(cell.peak_rss_kb);
    series.push_back(std::move(row));
  }
  table.print(
      "Simulation-core throughput — steady-state maintenance of the full "
      "stack (expect: msgs/round ~4n, rounds/sec falling ~1/n, RSS linear)");
  ssps::bench::result_json()["simcore"] = std::move(series);

  // Worker sweep: the same steady-state window under the parallel round
  // scheduler. msgs/round is a determinism pin (the trace is worker-count
  // independent, so the column must not move); rounds/sec is the scaling
  // measurement and only meaningful on multi-core hosts (a single-core
  // container serializes the workers and pays the barrier overhead).
  Table sweep({"n", "threads", "bootstrap rounds", "msgs/round", "rounds/sec",
               "msgs/sec"});
  scenario::Json sweep_series = scenario::Json::array();
  for (std::size_t n : {4096u, 16384u}) {
    for (unsigned threads : {1u, 2u, 4u}) {
      const Cell cell = measure(n, 30, 3, threads);
      sweep.add_row({Table::num(static_cast<std::uint64_t>(cell.n)),
                     Table::num(static_cast<std::uint64_t>(threads)),
                     Table::num(static_cast<std::uint64_t>(cell.bootstrap_rounds)),
                     Table::num(cell.msgs_per_round),
                     Table::num(cell.rounds_per_sec, 1),
                     Table::num(cell.msgs_per_sec, 0)});
      scenario::Json row = scenario::Json::object();
      row["n"] = static_cast<std::uint64_t>(cell.n);
      row["threads"] = static_cast<std::uint64_t>(threads);
      row["scheduler"] = "rounds";
      row["bootstrap_rounds"] = static_cast<std::uint64_t>(cell.bootstrap_rounds);
      row["msgs_per_round"] = cell.msgs_per_round;
      row["rounds_per_sec"] = cell.rounds_per_sec;
      row["msgs_per_sec"] = cell.msgs_per_sec;
      sweep_series.push_back(std::move(row));
    }
  }
  sweep.print(
      "Parallel round scheduler — steady-state worker sweep (expect: "
      "identical msgs/round per n; rounds/sec scaling with cores)");
  ssps::bench::result_json()["simcore_threads"] = std::move(sweep_series);
}

void BM_SteadyRoundParallel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  pubsub::PubSubSystem sys(core::SkipRingSystem::Options{.seed = 7, .fd_delay = 0});
  sys.net().set_threads(threads);
  sys.add_pubsub_subscribers(n);
  sys.run_until_legit(20000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.net().run_round());
  }
}
BENCHMARK(BM_SteadyRoundParallel)
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({16384, 2})
    ->Args({16384, 4})
    ->Unit(benchmark::kMicrosecond);

void BM_SteadyRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  pubsub::PubSubSystem sys(core::SkipRingSystem::Options{.seed = 7, .fd_delay = 0});
  sys.add_pubsub_subscribers(n);
  sys.run_until_legit(20000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.net().run_round());
  }
}
BENCHMARK(BM_SteadyRound)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_EmitDeliverCycle(benchmark::State& state) {
  // Pure sim-core cost: pooled emit + shuffled grouped delivery into an
  // empty handler, no protocol logic.
  struct Sink final : sim::Node {
    void handle(sim::PooledMsg) override {}
    void timeout() override {}
  };
  sim::Network net(1);
  std::vector<sim::NodeId> ids;
  for (int i = 0; i < 1024; ++i) ids.push_back(net.spawn<Sink>());
  const core::LabeledRef ref{core::Label::from_index(5), ids[3]};
  const core::Label believed = core::Label::from_index(9);
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      net.emit<core::msg::Check>(ids[(i * 37) & 1023], ref, believed,
                                 core::IntroFlag::kLinear);
    }
    benchmark::DoNotOptimize(net.run_round());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EmitDeliverCycle)->Unit(benchmark::kMicrosecond);

}  // namespace

SSPS_BENCH_MAIN("simcore", print_experiment)
