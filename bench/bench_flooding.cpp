// Experiment E8 — §1.2/§4.3: flooding over the skip ring delivers new
// publications in O(log n) rounds (diameter log n), versus the O(n)
// plain-ring routing of the related ad-hoc systems [20, 21].
#include <cmath>

#include "bench_common.hpp"
#include "core/skip_ring_spec.hpp"
#include "pubsub/pubsub_node.hpp"

namespace {

using namespace ssps;
using namespace ssps::core;
using namespace ssps::pubsub;

std::size_t measured_flood_rounds(std::size_t n, std::uint64_t seed) {
  PubSubSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0},
                   PubSubConfig{});
  const auto ids = sys.add_pubsub_subscribers(n);
  if (!sys.run_until_legit(8000)) return 0;
  sys.pubsub(ids[0]).publish("flood probe");
  const auto rounds =
      sys.net().run_until([&] { return sys.publications_converged(); }, 4 * n);
  return rounds.value_or(0);
}

/// Worst-case hop distance using only the ring edges E_R (the [20, 21]
/// regime: a cycle with routing over successors).
std::size_t plain_ring_worst_hops(std::size_t n) { return n / 2; }

void print_experiment() {
  Table table({"n", "flood rounds (measured)", "SR diameter", "log2(n)",
               "plain-ring worst hops (related work)"});
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    const SkipRingSpec spec(n);
    const int diameter = spec.diameter();
    table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                   Table::num(static_cast<std::uint64_t>(measured_flood_rounds(n, 60 + n))),
                   Table::num(static_cast<std::uint64_t>(diameter)),
                   Table::num(std::log2(static_cast<double>(n)), 1),
                   Table::num(static_cast<std::uint64_t>(plain_ring_worst_hops(n)))});
  }
  table.print(
      "E8 / §4.3 — flooding delivery time vs plain-ring routing "
      "(expect: measured ~diameter ~log n, vs n/2 for the cycle of [20,21])");
}

void BM_FloodOneRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  PubSubSystem sys(SkipRingSystem::Options{.seed = 8, .fd_delay = 0}, PubSubConfig{});
  const auto ids = sys.add_pubsub_subscribers(n);
  sys.run_until_legit(8000);
  std::size_t i = 0;
  for (auto _ : state) {
    sys.pubsub(ids[i % ids.size()]).publish("p" + std::to_string(i));
    sys.net().run_round();
    ++i;
  }
}
BENCHMARK(BM_FloodOneRound)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

SSPS_BENCH_MAIN("flooding", print_experiment)
