// Oracle experiments: stabilization from genuinely arbitrary states
// (ArbitraryStateInjector, the Definition 1 adversary) across system sizes
// and seeds, plus the cost of one full invariant sweep.
//
// The recovery table is the reproduction's analogue of the paper's
// convergence experiments with the strongest adversary this codebase has:
// every protocol variable rebuilt at random, certified back to legality by
// the invariant oracle rather than by any single probe.
#include "bench_common.hpp"
#include "oracle/invariants.hpp"
#include "oracle/scramble.hpp"
#include "pubsub/pubsub_node.hpp"

namespace {

using namespace ssps;

struct Recovery {
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
  bool ok = false;
};

/// Bootstraps n subscribers to legality, scrambles with `seed`, and runs
/// until the oracle certifies zero violations again.
Recovery recover(std::size_t n, std::uint64_t seed) {
  pubsub::PubSubSystem system({.seed = seed});
  system.add_pubsub_subscribers(n);
  Recovery out;
  if (!system.run_until_legit(20000)) return out;
  system.pubsub(system.active_ids()[0]).publish("seed-payload");
  if (!system.net().run_until([&] { return system.publications_converged(); },
                              5000)) {
    return out;
  }

  oracle::ScrambleOptions options;
  options.seed = seed * 977 + 13;
  oracle::ArbitraryStateInjector injector(options);
  injector.scramble(system);

  system.net().metrics().reset();
  const auto rounds = system.net().run_until(
      [&] { return oracle::check_system(system).ok(); }, 20000);
  out.ok = rounds.has_value();
  out.rounds = rounds.value_or(0);
  out.messages = system.net().metrics().snapshot().total_sent();
  return out;
}

void print_experiment() {
  constexpr std::uint64_t kSeeds = 10;
  Table table({"n", "seeds ok", "median rounds", "max rounds", "msgs/node/round"});
  auto& doc = bench::result_json();
  scenario::Json series = scenario::Json::array();

  for (std::size_t n : {8, 16, 32, 64}) {
    std::vector<std::size_t> rounds;
    double msgs_per_node_round = 0.0;
    std::size_t ok = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const Recovery r = recover(n, seed);
      if (!r.ok) continue;
      ok += 1;
      rounds.push_back(r.rounds);
      if (r.rounds > 0) {
        msgs_per_node_round +=
            static_cast<double>(r.messages) /
            (static_cast<double>(n) * static_cast<double>(r.rounds));
      }
    }
    std::sort(rounds.begin(), rounds.end());
    const std::size_t median = rounds.empty() ? 0 : rounds[rounds.size() / 2];
    const std::size_t worst = rounds.empty() ? 0 : rounds.back();
    const double mnr = ok == 0 ? 0.0 : msgs_per_node_round / static_cast<double>(ok);
    table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                   std::to_string(ok) + "/" + std::to_string(kSeeds),
                   Table::num(static_cast<std::uint64_t>(median)),
                   Table::num(static_cast<std::uint64_t>(worst)),
                   Table::num(mnr, 2)});
    scenario::Json row = scenario::Json::object();
    row["n"] = static_cast<std::uint64_t>(n);
    row["seeds_ok"] = static_cast<std::uint64_t>(ok);
    row["median_rounds"] = static_cast<std::uint64_t>(median);
    row["max_rounds"] = static_cast<std::uint64_t>(worst);
    row["msgs_per_node_round"] = mnr;
    series.push_back(std::move(row));
  }
  table.print("Stabilization from arbitrary states (oracle-certified)");
  doc["recovery"] = std::move(series);
}

/// Micro timing: one full oracle sweep over a converged n-node system.
void bench_sweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  pubsub::PubSubSystem system({.seed = 42});
  system.add_pubsub_subscribers(n);
  if (!system.run_until_legit(20000)) {
    state.SkipWithError("bootstrap did not converge");
    return;
  }
  for (auto _ : state) {
    const oracle::OracleReport report = oracle::check_system(system);
    benchmark::DoNotOptimize(report.violations.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(bench_sweep)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

SSPS_BENCH_MAIN("oracle", print_experiment)
