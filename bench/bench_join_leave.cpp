// Experiment E3 — Theorem 7 + §4.1: membership operation costs.
//
// Paper claims: the supervisor sends O(1) messages per subscribe (1) and
// per unsubscribe (≤ 2); insertions spread so that a pre-existing
// subscriber's ring neighborhood changes for at most two insertions until
// the population doubles.
#include <map>

#include "bench_common.hpp"
#include "core/system.hpp"

namespace {

using namespace ssps;
using namespace ssps::core;

struct OpCost {
  double join_marginal_configs;
  double leave_marginal_configs;
  std::size_t join_integration_rounds;
};

OpCost measure(std::size_t n) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 40 + n, .fd_delay = 0});
  auto ids = sys.add_subscribers(n);
  sys.run_until_legit(5000);

  // Precise steady-state SetData rate (round-robin + Theorem-5 replies).
  sys.net().run_rounds(3);
  sys.net().metrics().reset();
  const std::size_t calib = 200;
  sys.net().run_rounds(calib);
  const double rate =
      static_cast<double>(sys.net().metrics().sent("SetData")) / calib;

  // 20 joins, 3 settle rounds each; the marginal configuration volume per
  // join is (total − rate·rounds)/20, which averages the noise away.
  const std::size_t ops = 20;
  const std::size_t settle = 3;
  sys.net().metrics().reset();
  for (std::size_t i = 0; i < ops; ++i) {
    ids.push_back(sys.add_subscriber());
    sys.net().run_rounds(settle);
  }
  const double join_configs =
      (static_cast<double>(sys.net().metrics().sent("SetData")) -
       rate * static_cast<double>(ops * settle)) /
      static_cast<double>(ops);
  const auto join_rounds = sys.run_until_legit(2000);

  // 20 interior leaves (each forces the relabel path).
  sys.net().run_rounds(3);
  sys.net().metrics().reset();
  for (std::size_t i = 0; i < ops; ++i) {
    sys.request_unsubscribe(ids[n / 2 + i]);
    sys.net().run_rounds(settle);
  }
  const double leave_configs =
      (static_cast<double>(sys.net().metrics().sent("SetData")) -
       rate * static_cast<double>(ops * settle)) /
      static_cast<double>(ops);
  sys.run_until_legit(2000);

  return OpCost{join_configs, leave_configs, join_rounds.value_or(9999)};
}

/// §4.1 doubling claim: count, over a doubling from n to 2n, how many of
/// the original subscribers saw their ring neighborhood change more than
/// twice (expected: none — each gap is bisected exactly once per side).
std::size_t over_touched_during_doubling(std::size_t n) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 90 + n, .fd_delay = 0});
  const auto old_ids = sys.add_subscribers(n);
  sys.run_until_legit(5000);

  std::map<std::uint64_t, int> changes;
  std::map<std::uint64_t, std::pair<std::string, std::string>> last;
  auto sides = [&](sim::NodeId id) {
    const auto& s = sys.subscriber(id);
    std::string left = s.left() ? s.left()->label.to_string()
                                : (s.ring() ? s.ring()->label.to_string() : "_");
    std::string right = s.right() ? s.right()->label.to_string()
                                  : (s.ring() ? s.ring()->label.to_string() : "_");
    return std::make_pair(left, right);
  };
  for (sim::NodeId id : old_ids) last[id.value] = sides(id);

  for (std::size_t j = 0; j < n; ++j) {
    sys.add_subscriber();
    sys.run_until_legit(3000);
    for (sim::NodeId id : old_ids) {
      auto now = sides(id);
      if (now.first != last[id.value].first) changes[id.value] += 1;
      if (now.second != last[id.value].second) changes[id.value] += 1;
      last[id.value] = now;
    }
  }
  std::size_t over = 0;
  for (const auto& [id, c] : changes) {
    if (c > 2) ++over;
  }
  return over;
}

void print_experiment() {
  {
    Table table({"n", "configs per join", "configs per leave", "rounds to integrate"});
    for (std::size_t n : {16u, 64u, 256u, 1024u}) {
      const OpCost cost = measure(n);
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(cost.join_marginal_configs, 1),
                     Table::num(cost.leave_marginal_configs, 1),
                     Table::num(static_cast<std::uint64_t>(cost.join_integration_rounds))});
    }
    table.print(
        "E3 / Theorem 7 — supervisor configuration messages per membership op "
        "(expect: O(1) and flat in n; the op itself costs join=1 / leave<=2 "
        "— see supervisor_test — plus an O(1) healing dialogue counted here)");
  }
  {
    Table table({"n -> 2n", "old nodes touched >2 times"});
    for (std::size_t n : {8u, 16u, 32u}) {
      table.add_row({Table::num(static_cast<std::uint64_t>(n)) + " -> " +
                         Table::num(static_cast<std::uint64_t>(2 * n)),
                     Table::num(static_cast<std::uint64_t>(over_touched_during_doubling(n)))});
    }
    table.print(
        "E3b / §4.1 — insertion spreading: ring-neighborhood changes per "
        "pre-existing subscriber during a doubling (expect: 0 nodes above 2)");
  }
}

void BM_SubscribeOp(benchmark::State& state) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 3, .fd_delay = 0});
  sys.add_subscribers(static_cast<std::size_t>(state.range(0)));
  sys.run_until_legit(5000);
  for (auto _ : state) {
    sys.add_subscriber();
    sys.net().run_rounds(2);
  }
}
BENCHMARK(BM_SubscribeOp)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond);

}  // namespace

SSPS_BENCH_MAIN("join_leave", print_experiment)
