// Experiment E13 — §1.3/§4: multi-topic scaling. The supervisor's message
// overhead is "linear in the number of topics (but not in the number of
// subscribers)"; sharding topics over a consistent-hashing supervisor
// group splits that load.
#include "bench_common.hpp"
#include "pubsub/topics.hpp"

namespace {

using namespace ssps;
using namespace ssps::pubsub;

struct TopicLoad {
  double supervisor_out_per_round = 0;
  double supervisor_in_per_round = 0;
};

TopicLoad run_single_supervisor(std::size_t topics, std::size_t subs_per_topic,
                                std::uint64_t seed) {
  sim::Network net(seed);
  const auto sup = net.spawn<MultiTopicSupervisorNode>();
  std::vector<sim::NodeId> clients;
  for (std::size_t i = 0; i < subs_per_topic; ++i) {
    clients.push_back(net.spawn<MultiTopicNode>(MultiTopicNode::fixed(sup)));
  }
  for (TopicId t = 1; t <= topics; ++t) {
    for (sim::NodeId c : clients) net.node_as<MultiTopicNode>(c).subscribe(t);
  }
  net.run_rounds(80);  // converge every topic ring
  net.metrics().reset();
  const std::size_t window = 50;
  net.run_rounds(window);
  TopicLoad out;
  out.supervisor_out_per_round =
      static_cast<double>(net.metrics().sent("SetData")) / window;
  out.supervisor_in_per_round =
      static_cast<double>(net.metrics().received_by(sup)) / window;
  return out;
}

double max_supervisor_in_group(std::size_t topics, std::size_t supervisors,
                               std::size_t subs_per_topic, std::uint64_t seed) {
  sim::Network net(seed);
  std::vector<sim::NodeId> sups;
  for (std::size_t i = 0; i < supervisors; ++i) {
    sups.push_back(net.spawn<MultiTopicSupervisorNode>());
  }
  SupervisorGroup group(sups);
  auto resolver = [&group](TopicId t) { return group.supervisor_for(t); };
  std::vector<sim::NodeId> clients;
  for (std::size_t i = 0; i < subs_per_topic; ++i) {
    clients.push_back(net.spawn<MultiTopicNode>(resolver));
  }
  for (TopicId t = 1; t <= topics; ++t) {
    for (sim::NodeId c : clients) net.node_as<MultiTopicNode>(c).subscribe(t);
  }
  net.run_rounds(80);
  net.metrics().reset();
  const std::size_t window = 50;
  net.run_rounds(window);
  double worst = 0;
  for (sim::NodeId s : sups) {
    worst = std::max(worst, static_cast<double>(net.metrics().received_by(s)) / window);
  }
  return worst;
}

void print_experiment() {
  {
    // The thousand-topic points exercise the flat per-topic tables
    // (common/flat_map.hpp): every supervisor Timeout walks all of its
    // per-topic instances, and every envelope dispatch looks one up.
    Table table({"topics", "subs/topic", "supervisor out/round", "supervisor in/round"});
    for (std::size_t topics : {1u, 4u, 16u, 64u, 256u, 1024u}) {
      const std::size_t subs = topics >= 256 ? 4 : 8;
      const TopicLoad load = run_single_supervisor(topics, subs, 10 + topics);
      table.add_row({Table::num(static_cast<std::uint64_t>(topics)),
                     Table::num(static_cast<std::uint64_t>(subs)),
                     Table::num(load.supervisor_out_per_round, 2),
                     Table::num(load.supervisor_in_per_round, 2)});
    }
    table.print(
        "E13a / §1.3 — single supervisor, topic sweep to 1024 topics "
        "(expect: load linear in topics — ~1 SetData per topic per round)");
  }
  {
    Table table({"topics", "supervisors", "max supervisor in/round"});
    const std::size_t topics = 32;
    for (std::size_t sups : {1u, 2u, 4u, 8u}) {
      table.add_row({Table::num(static_cast<std::uint64_t>(topics)),
                     Table::num(static_cast<std::uint64_t>(sups)),
                     Table::num(max_supervisor_in_group(topics, sups, 6, 20 + sups), 2)});
    }
    table.print(
        "E13b / §1.3 — consistent-hashing supervisor group "
        "(expect: worst per-supervisor load shrinks as supervisors are added)");
  }
}

void BM_MultiTopicRound(benchmark::State& state) {
  const std::size_t topics = static_cast<std::size_t>(state.range(0));
  sim::Network net(1);
  const auto sup = net.spawn<MultiTopicSupervisorNode>();
  std::vector<sim::NodeId> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(net.spawn<MultiTopicNode>(MultiTopicNode::fixed(sup)));
  }
  for (TopicId t = 1; t <= topics; ++t) {
    for (sim::NodeId c : clients) net.node_as<MultiTopicNode>(c).subscribe(t);
  }
  net.run_rounds(80);
  for (auto _ : state) net.run_round();
}
BENCHMARK(BM_MultiTopicRound)
    ->Arg(4)
    ->Arg(32)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

SSPS_BENCH_MAIN("topics", print_experiment)
