// Experiment E2 — Theorem 5: expected configuration requests reaching the
// supervisor per timeout interval in a legitimate state.
//
// Paper claim: the expectation is < 1 and independent of n (the proof sums
// Σ_k 2^{k−1}/(2^k·k²) < 1). With the real label population (two length-1
// labels — the paper's own Lemma 3 population) the exact steady-state
// expectation is ≈ 1.32, still a constant in n; see EXPERIMENTS.md for the
// discrepancy discussion. This bench measures the rate and the
// supervisor's total in/out traffic per round.
#include <cmath>

#include "bench_common.hpp"
#include "core/system.hpp"

namespace {

using namespace ssps;
using namespace ssps::core;

double predicted(std::size_t n) {
  double expected = 0.0;
  for (std::size_t x = 0; x < n; ++x) {
    const int k = Label::from_index(x).length();
    expected += 1.0 / (std::pow(2.0, k) * k * k);
  }
  return expected;
}

void print_experiment() {
  Table table({"n", "requests/round (measured)", "predicted (corrected series)",
               "paper bound", "supervisor out/round", "supervisor in/round"});
  const std::size_t rounds = 500;
  for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    SkipRingSystem sys(SkipRingSystem::Options{.seed = 100 + n, .fd_delay = 0});
    sys.add_subscribers(n);
    const auto converged = sys.run_until_legit(5000);
    if (!converged) {
      std::fprintf(stderr, "n=%zu failed to converge\n", n);
      continue;
    }
    sys.net().run_rounds(5);
    sys.net().metrics().reset();
    sys.net().run_rounds(rounds);
    const auto& metrics = sys.net().metrics();
    const double requests =
        static_cast<double>(metrics.sent("GetConfiguration") + metrics.sent("Subscribe") +
                            metrics.sent("Unsubscribe")) /
        static_cast<double>(rounds);
    const double sup_in =
        static_cast<double>(metrics.received_by(sys.supervisor_id())) /
        static_cast<double>(rounds);
    const double sup_out =
        static_cast<double>(metrics.sent("SetData")) / static_cast<double>(rounds);
    table.add_row({Table::num(static_cast<std::uint64_t>(n)), Table::num(requests, 3),
                   Table::num(predicted(n), 3), "< 1 (see note)", Table::num(sup_out, 3),
                   Table::num(sup_in, 3)});
  }
  table.print(
      "E2 / Theorem 5 — supervisor request rate in legitimate state "
      "(expect: constant in n, ~1.32 with the real f(1)=2 label population)");
}

void BM_SteadyStateRound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  SkipRingSystem sys(SkipRingSystem::Options{.seed = 7, .fd_delay = 0});
  sys.add_subscribers(n);
  sys.run_until_legit(5000);
  for (auto _ : state) {
    sys.net().run_round();
  }
  state.counters["msgs/round"] = benchmark::Counter(
      static_cast<double>(sys.net().metrics().total_sent()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SteadyStateRound)->Arg(64)->Arg(512)->Arg(2048)->Unit(benchmark::kMicrosecond);

}  // namespace

SSPS_BENCH_MAIN("supervisor_load", print_experiment)
