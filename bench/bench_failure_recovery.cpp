// Experiment E11 — §3.3: recovery from unannounced crashes. The supervisor
// (sole failure-detector holder) evicts crashed subscribers; relabeling
// pulls the highest labels into the holes; survivors re-stabilize to
// SR(n − f).
//
// The experiment runs through the scenario engine: one spec per (crashes,
// fd delay) cell — bootstrap phase, then a crash wave with a convergence
// wait — and the recovery numbers come off the phase reports, which also
// land in BENCH_failure_recovery.json via the engine's report writer.
#include "bench_common.hpp"
#include "core/system.hpp"
#include "scenario/runner.hpp"

namespace {

using namespace ssps;

struct Recovery {
  std::size_t rounds = 0;
  bool ok = false;
  std::size_t survivors = 0;
  std::uint64_t recovery_messages = 0;
};

scenario::ScenarioSpec crash_scenario(std::size_t n, std::size_t crashes,
                                      sim::Round fd_delay, std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.name = "crash-recovery";
  spec.seed = seed;
  spec.nodes = n;
  spec.mode = scenario::Mode::kSingleTopic;
  spec.fd_delay = fd_delay;

  scenario::Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = n;
  bootstrap.converge = true;
  bootstrap.max_rounds = 8000;
  spec.phases.push_back(bootstrap);

  scenario::Phase wave;
  wave.name = "crash-wave";
  wave.churn.crashes = crashes;
  wave.converge = true;
  wave.max_rounds = 30000;
  spec.phases.push_back(wave);
  return spec;
}

Recovery run(std::size_t n, std::size_t crashes, sim::Round fd_delay,
             std::uint64_t seed) {
  scenario::ScenarioRunner runner(crash_scenario(n, crashes, fd_delay, seed));
  const scenario::ScenarioReport& report = runner.run();
  const scenario::PhaseReport& wave = report.phases.back();
  Recovery out;
  out.ok = report.ok;
  out.rounds = wave.converged ? wave.convergence_rounds.value_or(0) : 0;
  out.survivors = runner.single().supervisor().size();
  out.recovery_messages = wave.messages;
  return out;
}

void print_experiment() {
  scenario::Json series = scenario::Json::array();
  Table table({"n", "crashes", "fd delay", "recovery rounds", "survivors"});
  const std::size_t n = 64;
  for (std::size_t crashes : {1u, 4u, 16u, 32u}) {
    for (sim::Round delay : {sim::Round{0}, sim::Round{8}}) {
      const Recovery r = run(n, crashes, delay, 100 + crashes + delay);
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(static_cast<std::uint64_t>(crashes)),
                     Table::num(static_cast<std::uint64_t>(delay)),
                     r.ok ? Table::num(static_cast<std::uint64_t>(r.rounds))
                          : std::string("DNF"),
                     Table::num(static_cast<std::uint64_t>(r.survivors))});
      scenario::Json row = scenario::Json::object();
      row["n"] = static_cast<std::uint64_t>(n);
      row["crashes"] = static_cast<std::uint64_t>(crashes);
      row["fd_delay"] = static_cast<std::uint64_t>(delay);
      row["ok"] = r.ok;
      row["recovery_rounds"] = static_cast<std::uint64_t>(r.rounds);
      row["survivors"] = static_cast<std::uint64_t>(r.survivors);
      row["recovery_messages"] = r.recovery_messages;
      series.push_back(std::move(row));
    }
  }
  table.print(
      "E11 / §3.3 — crash recovery to SR(n-f) "
      "(expect: recovery rounds grow with f and fd delay; survivors = n-f)");
  ssps::bench::result_json()["failure_recovery"] = std::move(series);
}

void BM_CrashRecovery(benchmark::State& state) {
  const std::size_t n = 48;
  std::uint64_t seed = 9;
  for (auto _ : state) {
    const Recovery r = run(n, 8, 2, seed++);
    benchmark::DoNotOptimize(r.rounds);
  }
}
BENCHMARK(BM_CrashRecovery)->Unit(benchmark::kMillisecond);

}  // namespace

SSPS_BENCH_MAIN("failure_recovery", print_experiment)
