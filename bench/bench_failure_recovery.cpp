// Experiment E11 — §3.3: recovery from unannounced crashes. The supervisor
// (sole failure-detector holder) evicts crashed subscribers; relabeling
// pulls the highest labels into the holes; survivors re-stabilize to
// SR(n − f).
#include "bench_common.hpp"
#include "core/system.hpp"

namespace {

using namespace ssps;
using namespace ssps::core;

struct Recovery {
  std::size_t rounds = 0;
  bool ok = false;
  std::size_t survivors = 0;
};

Recovery run(std::size_t n, std::size_t crashes, sim::Round fd_delay,
             std::uint64_t seed) {
  SkipRingSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = fd_delay});
  const auto ids = sys.add_subscribers(n);
  if (!sys.run_until_legit(8000)) return {};
  const std::size_t stride = n / crashes;
  for (std::size_t i = 0; i < crashes; ++i) sys.crash(ids[i * stride]);
  const auto rounds = sys.run_until_legit(30000);
  Recovery out;
  out.ok = rounds.has_value();
  out.rounds = rounds.value_or(0);
  out.survivors = sys.supervisor().size();
  return out;
}

void print_experiment() {
  Table table({"n", "crashes", "fd delay", "recovery rounds", "survivors"});
  const std::size_t n = 64;
  for (std::size_t crashes : {1u, 4u, 16u, 32u}) {
    for (sim::Round delay : {sim::Round{0}, sim::Round{8}}) {
      const Recovery r = run(n, crashes, delay, 100 + crashes + delay);
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(static_cast<std::uint64_t>(crashes)),
                     Table::num(static_cast<std::uint64_t>(delay)),
                     r.ok ? Table::num(static_cast<std::uint64_t>(r.rounds))
                          : std::string("DNF"),
                     Table::num(static_cast<std::uint64_t>(r.survivors))});
    }
  }
  table.print(
      "E11 / §3.3 — crash recovery to SR(n-f) "
      "(expect: recovery rounds grow with f and fd delay; survivors = n-f)");
}

void BM_CrashRecovery(benchmark::State& state) {
  const std::size_t n = 48;
  std::uint64_t seed = 9;
  for (auto _ : state) {
    const Recovery r = run(n, 8, 2, seed++);
    benchmark::DoNotOptimize(r.rounds);
  }
}
BENCHMARK(BM_CrashRecovery)->Unit(benchmark::kMillisecond);

}  // namespace

SSPS_BENCH_MAIN(print_experiment)
