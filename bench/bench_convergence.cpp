// Experiments E4/E5/E12 — Theorems 8 & 13: convergence from adversarial
// initial states, the closure window after legitimacy, and the
// label-correction ablation (Lemma 4's extension of BuildRing).
//
// The E4 and E12 series run through the scenario engine: each initial-state
// class is a two-phase ScenarioSpec (bootstrap to legitimacy, corrupt +
// re-converge) and the numbers are read off the phase reports, which also
// land in BENCH_convergence.json via the engine's report writer.
#include <cmath>

#include "bench_common.hpp"
#include "core/chaos.hpp"
#include "core/system.hpp"
#include "scenario/builtin.hpp"
#include "scenario/runner.hpp"

namespace {

using namespace ssps;
using namespace ssps::core;

using ssps::bench::now_seconds;

struct Run {
  std::size_t rounds = 0;
  double msgs_per_node_round = 0;
  double wall_secs = 0;
  bool ok = false;
};

/// Chaos knobs for one named initial-state class ("chaos", "wipe",
/// "labels-only", "edges-only"); nullopt for classes that are not
/// ChaosOptions-shaped ("cold", "splitbrain").
std::optional<ChaosOptions> chaos_for(const std::string& klass, std::uint64_t seed) {
  ChaosOptions chaos;
  chaos.seed = seed * 3 + 1;
  if (klass == "chaos") return chaos;
  if (klass == "wipe") {
    chaos.wipe_database = true;
    return chaos;
  }
  if (klass == "labels-only") {
    // E12 ablation input: correct edges, corrupted labels everywhere —
    // isolates the extended BuildRing label-correction machinery.
    chaos.clear_label_pct = 0;
    chaos.random_label_pct = 100;
    chaos.scramble_edges_pct = 0;
    chaos.bogus_shortcut_pct = 0;
    chaos.corrupt_database = false;
    chaos.junk_messages = 0;
    return chaos;
  }
  if (klass == "edges-only") {
    chaos.clear_label_pct = 0;
    chaos.random_label_pct = 0;
    chaos.scramble_edges_pct = 100;
    chaos.bogus_shortcut_pct = 0;
    chaos.corrupt_database = false;
    chaos.junk_messages = 0;
    return chaos;
  }
  return std::nullopt;
}

/// The scenario for one (class, n, seed) cell: a cold start measures its
/// bootstrap phase; every other class bootstraps to legitimacy first and
/// measures the corrupt-and-recover phase.
scenario::ScenarioSpec class_scenario(const std::string& klass, std::size_t n,
                                      std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.name = "convergence-" + klass;
  spec.seed = seed;
  spec.nodes = n;
  spec.mode = scenario::Mode::kSingleTopic;

  scenario::Phase bootstrap;
  bootstrap.name = "bootstrap";
  bootstrap.churn.joins = n;
  bootstrap.converge = true;
  bootstrap.max_rounds = klass == "cold" ? 20000 : 5000;
  spec.phases.push_back(bootstrap);
  if (klass == "cold") return spec;

  scenario::Phase corrupt;
  corrupt.name = "corrupt-and-recover";
  corrupt.chaos = chaos_for(klass, seed);
  corrupt.split_brain = klass == "splitbrain";
  corrupt.converge = true;
  corrupt.max_rounds = 20000;
  spec.phases.push_back(corrupt);
  return spec;
}

Run run_class(const std::string& klass, std::size_t n, std::uint64_t seed) {
  const double t0 = now_seconds();
  scenario::ScenarioRunner runner(class_scenario(klass, n, seed));
  const scenario::ScenarioReport& report = runner.run();
  const double wall = now_seconds() - t0;
  if (!report.ok) return {};
  const scenario::PhaseReport& measured = report.phases.back();
  Run out;
  out.ok = true;
  out.wall_secs = wall;
  out.rounds = measured.convergence_rounds.value_or(0);
  out.msgs_per_node_round =
      out.rounds == 0 ? 0.0
                      : static_cast<double>(measured.messages) /
                            static_cast<double>(out.rounds) / static_cast<double>(n + 1);
  return out;
}

void print_experiment() {
  scenario::Json series = scenario::Json::array();
  {
    Table table({"class", "n", "rounds to legit", "msgs/node/round"});
    for (const char* klass : {"cold", "chaos", "wipe", "splitbrain"}) {
      for (std::size_t n : {16u, 64u, 256u}) {
        // Median-ish: take the middle of three seeds by rounds.
        std::vector<Run> runs;
        for (std::uint64_t s = 1; s <= 3; ++s) runs.push_back(run_class(klass, n, s * 17 + n));
        std::sort(runs.begin(), runs.end(),
                  [](const Run& a, const Run& b) { return a.rounds < b.rounds; });
        const Run& mid = runs[1];
        table.add_row({klass, Table::num(static_cast<std::uint64_t>(n)),
                       mid.ok ? Table::num(static_cast<std::uint64_t>(mid.rounds))
                              : std::string("DNF"),
                       Table::num(mid.msgs_per_node_round, 2)});
        scenario::Json row = scenario::Json::object();
        row["class"] = klass;
        row["n"] = static_cast<std::uint64_t>(n);
        row["scheduler"] = "rounds";
        row["ok"] = mid.ok;
        row["rounds"] = static_cast<std::uint64_t>(mid.rounds);
        row["msgs_per_node_round"] = mid.msgs_per_node_round;
        series.push_back(std::move(row));
      }
    }
    table.print(
        "E4 / Theorem 8 — convergence rounds by initial-state class "
        "(expect: cold ~log n; corrupted classes grow mildly with n)");
  }
  {
    // Scale curve: cold-start convergence rounds vs log2 n, up to
    // n = 16384 — the O(log n) claim of Theorem 8 measured at the
    // populations the incremental legitimacy probe opens up (the
    // convergence wait is O(changed nodes) per round, so the wait no
    // longer dominates the protocol it observes). coldstart_secs is
    // wall-clock and deliberately NOT a gated metric; the deterministic
    // rounds are.
    Table table(
        {"n", "log2 n", "rounds to legit", "rounds / log2 n", "cold-start s"});
    scenario::Json curve = scenario::Json::array();
    for (std::size_t n : {64u, 256u, 1024u, 4096u, 16384u}) {
      std::vector<Run> runs;
      for (std::uint64_t s = 1; s <= 3; ++s) {
        runs.push_back(run_class("cold", n, s * 29 + n));
      }
      std::sort(runs.begin(), runs.end(),
                [](const Run& a, const Run& b) { return a.rounds < b.rounds; });
      const Run& mid = runs[1];
      const double log2n = std::log2(static_cast<double>(n));
      table.add_row({Table::num(static_cast<std::uint64_t>(n)), Table::num(log2n, 1),
                     mid.ok ? Table::num(static_cast<std::uint64_t>(mid.rounds))
                            : std::string("DNF"),
                     mid.ok ? Table::num(static_cast<double>(mid.rounds) / log2n, 2)
                            : std::string("-"),
                     Table::num(mid.wall_secs, 3)});
      scenario::Json row = scenario::Json::object();
      row["n"] = static_cast<std::uint64_t>(n);
      row["scheduler"] = "rounds";
      row["ok"] = mid.ok;
      row["rounds"] = static_cast<std::uint64_t>(mid.rounds);
      row["rounds_per_log2n"] =
          mid.ok ? static_cast<double>(mid.rounds) / log2n : 0.0;
      row["coldstart_secs"] = mid.wall_secs;
      curve.push_back(std::move(row));
    }
    table.print(
        "Scale curve / Theorem 8 — cold-start convergence up to n = 16384 "
        "(expect: rounds / log2 n roughly flat)");
    ssps::bench::result_json()["convergence_scale_curve"] = std::move(curve);
  }
  {
    // Delivery latency: bootstrap to legitimacy, fire a publish burst,
    // wait for publication agreement, and read the whole-run latency
    // percentiles off the report. Latency is measured in rounds, so every
    // column is a deterministic integer per seed — the gate compares them
    // drift-exact in both directions, like msgs_per_round.
    Table table({"n", "publications", "p50", "p99", "p999", "max"});
    scenario::Json lat_series = scenario::Json::array();
    for (std::size_t n : {16u, 64u, 256u}) {
      scenario::ScenarioSpec spec;
      spec.name = "latency-burst";
      spec.seed = 31 + n;
      spec.nodes = n;
      spec.mode = scenario::Mode::kSingleTopic;
      scenario::Phase bootstrap;
      bootstrap.name = "bootstrap";
      bootstrap.churn.joins = n;
      bootstrap.converge = true;
      bootstrap.max_rounds = 5000;
      spec.phases.push_back(bootstrap);
      scenario::Phase burst;
      burst.name = "publish-burst";
      burst.publish.count = n / 2;
      burst.converge = true;
      burst.max_rounds = 5000;
      spec.phases.push_back(burst);
      scenario::ScenarioRunner runner(std::move(spec));
      const scenario::ScenarioReport& report = runner.run();
      const auto& s = report.latency.global;
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(s.count), Table::num(s.p50), Table::num(s.p99),
                     Table::num(s.p999), Table::num(s.max)});
      scenario::Json row = scenario::Json::object();
      row["n"] = static_cast<std::uint64_t>(n);
      row["scheduler"] = "rounds";
      row["ok"] = report.ok;
      row["latency_count"] = s.count;
      row["latency_p50"] = s.p50;
      row["latency_p99"] = s.p99;
      row["latency_p999"] = s.p999;
      row["latency_max"] = s.max;
      lat_series.push_back(std::move(row));
    }
    table.print(
        "Delivery latency — rounds from publish to each subscriber's first "
        "receipt over a converged ring (expect: p50 within a few rounds, "
        "max ~O(log n) via flooding)");

    // The same burst under the event-driven timed scheduler on a lossy
    // WAN profile (~80 ms median lognormal latency, 2% loss): percentiles
    // read in virtual seconds. Deterministic per seed like the round rows;
    // the gate keys the two schedulers' rows apart by the "scheduler"
    // field.
    Table timed_table({"n", "publications", "p50 s", "p99 s", "p999 s", "max s"});
    for (std::size_t n : {16u, 64u, 256u}) {
      scenario::ScenarioSpec spec;
      spec.name = "latency-burst-timed";
      spec.seed = 31 + n;
      spec.nodes = n;
      spec.mode = scenario::Mode::kSingleTopic;
      spec.exec.scheduler = scenario::Scheduler::kTimed;
      spec.exec.timed.local.latency = {sim::LatencySpec::Dist::kLognormal, -2.5, 0.5};
      spec.exec.timed.local.loss = 0.02;
      scenario::Phase bootstrap;
      bootstrap.name = "bootstrap";
      bootstrap.churn.joins = n;
      bootstrap.converge = true;
      bootstrap.max_rounds = 5000;
      spec.phases.push_back(bootstrap);
      scenario::Phase burst;
      burst.name = "publish-burst";
      burst.publish.count = n / 2;
      burst.converge = true;
      burst.max_rounds = 5000;
      spec.phases.push_back(burst);
      scenario::ScenarioRunner runner(std::move(spec));
      const scenario::ScenarioReport& report = runner.run();
      const auto& s = report.latency.global;
      timed_table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                           Table::num(s.count), Table::num(s.p50),
                           Table::num(s.p99), Table::num(s.p999),
                           Table::num(s.max)});
      scenario::Json row = scenario::Json::object();
      row["n"] = static_cast<std::uint64_t>(n);
      row["scheduler"] = "timed";
      row["ok"] = report.ok;
      row["latency_count"] = s.count;
      row["latency_p50"] = s.p50;
      row["latency_p99"] = s.p99;
      row["latency_p999"] = s.p999;
      row["latency_max"] = s.max;
      lat_series.push_back(std::move(row));
    }
    timed_table.print(
        "Delivery latency, timed scheduler — virtual seconds from publish "
        "to first receipt on a lossy ~80 ms WAN (expect: p50 of a few "
        "seconds; deterministic per seed)");
    ssps::bench::result_json()["delivery_latency"] = std::move(lat_series);
  }
  {
    // Recovery time under the survive-the-wire fault mix: the chaos-churn
    // builtin (timed WAN, 5% loss, 2% corruption, 1% duplication) crashes
    // an eighth of the ring, then restarts the victims from periodic —
    // possibly stale — snapshots. The row is the virtual seconds the
    // recover phase needs to go green again. Deterministic per seed, so
    // recovery_seconds is drift-gated in both directions like the latency
    // percentiles.
    Table table({"n", "recovery s", "corrupted", "rejected", "recovered clean"});
    scenario::Json rec_series = scenario::Json::array();
    for (std::size_t n : {16u, 64u}) {
      struct Rec {
        bool ok = false;
        std::uint64_t seconds = 0;
        std::uint64_t corrupted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t recovered = 0;
        std::uint64_t recovered_clean = 0;
      };
      std::vector<Rec> recs;
      for (std::uint64_t s = 1; s <= 3; ++s) {
        scenario::ScenarioRunner runner(
            scenario::builtin_scenario("chaos-churn", s * 13 + n, n));
        const scenario::ScenarioReport& report = runner.run();
        Rec rec;
        rec.ok = report.ok;
        for (const scenario::PhaseReport& p : report.phases) {
          rec.corrupted += p.corrupted;
          rec.rejected += p.rejected;
          if (p.name == "recover") {
            rec.seconds = p.convergence_rounds.value_or(0);
            rec.recovered = p.recovered;
            rec.recovered_clean = p.recovered_clean;
          }
        }
        recs.push_back(rec);
      }
      std::sort(recs.begin(), recs.end(),
                [](const Rec& a, const Rec& b) { return a.seconds < b.seconds; });
      const Rec& mid = recs[1];
      table.add_row(
          {Table::num(static_cast<std::uint64_t>(n)),
           mid.ok ? Table::num(mid.seconds) : std::string("DNF"),
           Table::num(mid.corrupted), Table::num(mid.rejected),
           Table::num(mid.recovered_clean) + "/" + Table::num(mid.recovered)});
      scenario::Json row = scenario::Json::object();
      row["n"] = static_cast<std::uint64_t>(n);
      row["scheduler"] = "timed";
      row["ok"] = mid.ok;
      row["recovery_seconds"] = mid.seconds;
      row["corrupted"] = mid.corrupted;
      row["rejected"] = mid.rejected;
      row["recovered"] = static_cast<std::uint64_t>(mid.recovered);
      row["recovered_clean"] = static_cast<std::uint64_t>(mid.recovered_clean);
      rec_series.push_back(std::move(row));
    }
    table.print(
        "Recovery time — crash-recover from stale snapshots on a lossy, "
        "corrupting WAN (expect: recovery within tens of virtual seconds; "
        "corrupted frames rejected, never delivered as junk)");
    ssps::bench::result_json()["recovery_time"] = std::move(rec_series);
  }
  {
    // E5 / Theorem 13: closure — observe a converged system. (Stays
    // hand-rolled: the engine has no per-round legitimacy probe.)
    Table table({"n", "closure rounds observed", "legit throughout", "msgs/node/round"});
    for (std::size_t n : {16u, 64u, 256u}) {
      SkipRingSystem sys(SkipRingSystem::Options{.seed = 5 + n, .fd_delay = 0});
      sys.add_subscribers(n);
      sys.run_until_legit(5000);
      sys.net().run_rounds(3);
      sys.net().metrics().reset();
      bool stable = true;
      const std::size_t window = 50;
      for (std::size_t i = 0; i < window; ++i) {
        sys.net().run_round();
        stable = stable && sys.topology_legit();
      }
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(static_cast<std::uint64_t>(window)),
                     stable ? "yes" : "NO",
                     Table::num(static_cast<double>(sys.net().metrics().total_sent()) /
                                    static_cast<double>(window) / static_cast<double>(n + 1),
                                2)});
    }
    table.print(
        "E5 / Theorem 13 — closure: a legitimate system stays legitimate under "
        "steady maintenance traffic (expect: yes, constant msgs/node/round)");
  }
  {
    // E12: label corruption vs edge corruption — the extended BuildRing's
    // label-correction machinery (Lemma 4) at work.
    Table table({"ablation class", "n", "rounds to legit"});
    for (const char* klass : {"labels-only", "edges-only"}) {
      for (std::size_t n : {16u, 64u, 256u}) {
        const Run r = run_class(klass, n, 7 + n);
        table.add_row({klass, Table::num(static_cast<std::uint64_t>(n)),
                       r.ok ? Table::num(static_cast<std::uint64_t>(r.rounds))
                            : std::string("DNF")});
        scenario::Json row = scenario::Json::object();
        row["class"] = klass;
        row["n"] = static_cast<std::uint64_t>(n);
        row["ok"] = r.ok;
        row["rounds"] = static_cast<std::uint64_t>(r.rounds);
        series.push_back(std::move(row));
      }
    }
    table.print(
        "E12 / Lemma 4 ablation — corrupted labels alone vs corrupted edges "
        "alone (expect: both converge; labels repair via Check corrections)");
  }
  ssps::bench::result_json()["convergence"] = std::move(series);
}

void BM_ConvergenceColdStart(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SkipRingSystem sys(SkipRingSystem::Options{.seed = seed++, .fd_delay = 0});
    sys.add_subscribers(n);
    benchmark::DoNotOptimize(sys.run_until_legit(5000));
  }
}
BENCHMARK(BM_ConvergenceColdStart)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SSPS_BENCH_MAIN("convergence", print_experiment)
