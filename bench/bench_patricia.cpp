// Experiment E14 — micro-costs of the publication substrate: SHA-256
// throughput, key derivation, Patricia insert/locate/prefix-harvest, and
// the per-message digest work of the CheckTrie path (§4.2).
#include <string>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "pubsub/patricia.hpp"

namespace {

using namespace ssps;
using namespace ssps::pubsub;

PatriciaTrie build_trie(std::size_t count) {
  PatriciaTrie t(64);
  for (std::size_t i = 0; i < count; ++i) {
    t.insert(Publication{sim::NodeId{1 + (i % 16)}, "payload-" + std::to_string(i)});
  }
  return t;
}

void print_experiment() {
  Table table({"keys", "trie depth estimate", "insert cost basis"});
  for (std::size_t keys : {64u, 1024u, 16384u}) {
    const PatriciaTrie t = build_trie(keys);
    // Probe depth: length of the walk to a random leaf label.
    const auto all = t.all();
    std::size_t depth_sum = 0;
    std::size_t probes = 0;
    Rng rng(1);
    for (int i = 0; i < 64; ++i) {
      const auto& p = all[rng.pick_index(all)];
      BitString key = t.key_of(p);
      // Depth = number of distinct node labels along the path; approximate
      // by counting prefix lengths where locate() finds an exact node.
      std::size_t depth = 0;
      for (std::size_t cut = 0; cut <= key.size(); ++cut) {
        if (t.locate(key.prefix(cut)).kind == Locate::Kind::kExact) ++depth;
      }
      depth_sum += depth;
      ++probes;
    }
    table.add_row({Table::num(static_cast<std::uint64_t>(keys)),
                   Table::num(static_cast<double>(depth_sum) / static_cast<double>(probes), 1),
                   "see timings below"});
  }
  table.print(
      "E14 — Patricia trie shape (expect: depth ~log2(keys); timings follow)");
}

void BM_Sha256(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_PublicationKey(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        publication_key(sim::NodeId{7}, "payload-" + std::to_string(i++), 64));
  }
}
BENCHMARK(BM_PublicationKey);

void BM_TrieInsert(benchmark::State& state) {
  const std::size_t base = static_cast<std::size_t>(state.range(0));
  PatriciaTrie t = build_trie(base);
  std::size_t i = base;
  for (auto _ : state) {
    t.insert(Publication{sim::NodeId{3}, "fresh-" + std::to_string(i++)});
  }
}
BENCHMARK(BM_TrieInsert)->Arg(64)->Arg(1024)->Arg(16384);

void BM_TrieLocate(benchmark::State& state) {
  const PatriciaTrie t = build_trie(static_cast<std::size_t>(state.range(0)));
  const auto all = t.all();
  Rng rng(2);
  for (auto _ : state) {
    const auto& p = all[rng.pick_index(all)];
    benchmark::DoNotOptimize(t.locate(t.key_of(p)));
  }
}
BENCHMARK(BM_TrieLocate)->Arg(1024)->Arg(16384);

void BM_TrieCollectPrefix(benchmark::State& state) {
  const PatriciaTrie t = build_trie(static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    const BitString probe = BitString::from_uint(rng.below(16), 4);
    benchmark::DoNotOptimize(t.collect_prefix(probe));
  }
}
BENCHMARK(BM_TrieCollectPrefix)->Arg(1024)->Arg(16384);

void BM_RootDigestAfterInsert(benchmark::State& state) {
  // The Merkle re-hash along the insert path dominates insert cost.
  PatriciaTrie t = build_trie(4096);
  std::size_t i = 1000000;
  for (auto _ : state) {
    t.insert(Publication{sim::NodeId{4}, std::to_string(i++)});
    benchmark::DoNotOptimize(t.root());
  }
}
BENCHMARK(BM_RootDigestAfterInsert);

void BM_TrieCopy(benchmark::State& state) {
  const PatriciaTrie t = build_trie(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    PatriciaTrie copy = t;
    benchmark::DoNotOptimize(copy.size());
  }
}
BENCHMARK(BM_TrieCopy)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

SSPS_BENCH_MAIN("patricia", print_experiment)
