// Shared scaffolding for the bench binaries: every binary first prints its
// paper-style experiment table (the reproduction artifact recorded in
// bench_output.txt), then runs its google-benchmark micro timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/table.hpp"

/// Defines main(): prints the experiment via `print_fn`, then runs the
/// registered google-benchmark timings.
#define SSPS_BENCH_MAIN(print_fn)                                  \
  int main(int argc, char** argv) {                                \
    print_fn();                                                    \
    std::fflush(stdout);                                           \
    ::benchmark::Initialize(&argc, argv);                          \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {    \
      return 1;                                                    \
    }                                                              \
    ::benchmark::RunSpecifiedBenchmarks();                         \
    ::benchmark::Shutdown();                                       \
    return 0;                                                      \
  }
