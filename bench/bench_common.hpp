// Shared scaffolding for the bench binaries: every binary first prints its
// paper-style experiment table (the reproduction artifact recorded in
// bench_output.txt), then runs its google-benchmark micro timings, and
// finally writes one BENCH_<name>.json result object through the scenario
// engine's report writer so the performance trajectory accumulates in a
// uniform machine-readable format.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/table.hpp"
#include "scenario/report.hpp"

namespace ssps::bench {

/// The JSON object written to BENCH_<name>.json. Experiment printers add
/// their result series here; the harness stamps the name and wall time.
inline scenario::Json& result_json() {
  static scenario::Json doc = scenario::Json::object();
  return doc;
}

/// Monotonic wall clock in seconds, for experiment printers that time
/// coarse regions themselves (cold starts, bootstrap windows).
inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int run_bench_main(const char* name, void (*print_fn)(), int argc,
                          char** argv) {
  const auto start = std::chrono::steady_clock::now();
  print_fn();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  std::fflush(stdout);
  result_json()["experiment_seconds"] = elapsed.count();
  if (!scenario::write_bench_json(name, result_json())) {
    std::fprintf(stderr, "warning: could not write %s\n",
                 scenario::bench_json_path(name).c_str());
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

}  // namespace ssps::bench

/// Defines main(): prints the experiment via `print_fn`, writes
/// BENCH_<name>.json, then runs the registered google-benchmark timings.
#define SSPS_BENCH_MAIN(name, print_fn)                          \
  int main(int argc, char** argv) {                              \
    return ::ssps::bench::run_bench_main(name, print_fn, argc, argv); \
  }
