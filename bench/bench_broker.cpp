// Experiment E10 — the paper's introduction: in the client-server
// architecture "the server has to be powerful enough to handle the
// dissemination of the publish requests", whereas the supervisor "just
// handles subscribe and unsubscribe requests but does not handle the
// dissemination". Same workload, two architectures, central-party load.
#include "baseline/broker.hpp"
#include "bench_common.hpp"
#include "pubsub/pubsub_node.hpp"

namespace {

using namespace ssps;
using namespace ssps::core;
using namespace ssps::pubsub;

struct CentralLoad {
  std::uint64_t central_in = 0;
  std::uint64_t central_out = 0;
  std::uint64_t max_peer_load = 0;
};

CentralLoad run_broker(std::size_t n, std::size_t pubs, std::uint64_t seed) {
  sim::Network net(seed);
  const auto broker = net.spawn<baseline::BrokerNode>();
  std::vector<sim::NodeId> clients;
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(net.spawn<baseline::BrokerClientNode>(broker));
    net.node_as<baseline::BrokerClientNode>(clients.back()).subscribe();
  }
  net.run_rounds(2);
  net.metrics().reset();
  for (std::size_t p = 0; p < pubs; ++p) {
    net.node_as<baseline::BrokerClientNode>(clients[p % n])
        .publish("story " + std::to_string(p));
    net.run_round();
  }
  net.run_rounds(2);
  CentralLoad out;
  out.central_in = net.metrics().received_by(broker);
  out.central_out = net.metrics().sent("BrokerDeliver");
  for (sim::NodeId c : clients) {
    out.max_peer_load = std::max(out.max_peer_load, net.metrics().received_by(c));
  }
  return out;
}

CentralLoad run_supervised(std::size_t n, std::size_t pubs, std::uint64_t seed) {
  PubSubSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0},
                   PubSubConfig{});
  const auto ids = sys.add_pubsub_subscribers(n);
  sys.run_until_legit(8000);
  sys.net().metrics().reset();
  for (std::size_t p = 0; p < pubs; ++p) {
    sys.pubsub(ids[p % n]).publish("story " + std::to_string(p));
    sys.net().run_round();
  }
  sys.net().run_rounds(2);
  CentralLoad out;
  out.central_in = sys.net().metrics().received_by(sys.supervisor_id());
  out.central_out = sys.net().metrics().sent("SetData");
  for (sim::NodeId id : ids) {
    out.max_peer_load = std::max(out.max_peer_load, sys.net().metrics().received_by(id));
  }
  return out;
}

void print_experiment() {
  Table table({"n", "pubs", "architecture", "central in", "central out",
               "max peer in-load"});
  for (std::size_t n : {16u, 64u, 256u}) {
    const std::size_t pubs = 2 * n;
    const CentralLoad broker = run_broker(n, pubs, 1);
    const CentralLoad supervised = run_supervised(n, pubs, 2);
    auto add = [&](const char* arch, const CentralLoad& l) {
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(static_cast<std::uint64_t>(pubs)), arch,
                     Table::num(l.central_in), Table::num(l.central_out),
                     Table::num(l.max_peer_load)});
    };
    add("broker (client-server)", broker);
    add("supervised skip ring", supervised);
  }
  table.print(
      "E10 / §1 — central-party load under a publish-heavy workload "
      "(expect: broker out = pubs*(n-1), growing with n*pubs; supervisor "
      "traffic stays maintenance-level, independent of publish volume)");
}

void BM_BrokerPublish(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  sim::Network net(1);
  const auto broker = net.spawn<baseline::BrokerNode>();
  std::vector<sim::NodeId> clients;
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(net.spawn<baseline::BrokerClientNode>(broker));
    net.node_as<baseline::BrokerClientNode>(clients.back()).subscribe();
  }
  net.run_rounds(2);
  std::size_t i = 0;
  for (auto _ : state) {
    net.node_as<baseline::BrokerClientNode>(clients[i % n]).publish("x");
    net.run_round();
    ++i;
  }
}
BENCHMARK(BM_BrokerPublish)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

SSPS_BENCH_MAIN("broker", print_experiment)
