// Experiment E1 — Lemma 3: skip-ring degrees and edge counts.
//
// Paper claims: worst-case degree 2(⌈log n⌉ − k + 1) = O(log n); average
// degree < 4 = Θ(1); degree-slot sum 4n − 4 (n a power of two); diameter
// log n. This bench regenerates the series over a size sweep.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/shortcuts.hpp"
#include "core/skip_ring_spec.hpp"

namespace {

using namespace ssps;
using namespace ssps::core;

int sampled_diameter(const SkipRingSpec& spec, std::size_t sources) {
  // Exact for small n; max eccentricity over sampled sources for large n.
  Rng rng(1);
  int best = 0;
  const auto& order = spec.ring_order();
  for (std::size_t s = 0; s < sources; ++s) {
    const Label& from = order[rng.pick_index(order)];
    for (const auto& [key, d] : spec.hops_from(from)) best = std::max(best, d);
  }
  return best;
}

void print_experiment() {
  Table table({"n", "max_degree", "2(logn-k+1) bound", "avg_degree", "edges",
               "slot_sum", "4n-4", "diameter", "log2(n)"});
  for (std::size_t n : {16u, 64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    const SkipRingSpec spec(n);
    std::size_t max_deg = 0;
    std::size_t total_deg = 0;
    std::size_t slot_sum = 0;
    int min_len = 64;
    for (const Label& l : spec.ring_order()) {
      const std::size_t d = spec.degree(l);
      max_deg = std::max(max_deg, d);
      total_deg += d;
      slot_sum += 2u * static_cast<std::size_t>(spec.top_level() - l.length() + 1);
      min_len = std::min(min_len, l.length());
    }
    const int diameter =
        n <= 2048 ? spec.diameter() : sampled_diameter(spec, 24);
    table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                   Table::num(static_cast<std::uint64_t>(max_deg)),
                   Table::num(static_cast<std::uint64_t>(
                       2 * (static_cast<std::size_t>(spec.top_level()) -
                            static_cast<std::size_t>(min_len) + 1))),
                   Table::num(static_cast<double>(total_deg) / static_cast<double>(n), 3),
                   Table::num(static_cast<std::uint64_t>(spec.edge_count())),
                   Table::num(static_cast<std::uint64_t>(slot_sum)),
                   Table::num(static_cast<std::uint64_t>(4 * n - 4)),
                   Table::num(static_cast<std::uint64_t>(diameter)),
                   Table::num(std::log2(static_cast<double>(n)), 1)});
  }
  table.print(
      "E1 / Lemma 3 — degrees, edges, diameter of SR(n) "
      "(expect: max ~2log n, avg < 4 flat, slot_sum = 4n-4, diameter ~log n)");
}

void BM_SpecConstruction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    SkipRingSpec spec(n);
    benchmark::DoNotOptimize(spec.edge_count());
  }
}
BENCHMARK(BM_SpecConstruction)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ShortcutDerivation(benchmark::State& state) {
  const SkipRingSpec spec(4096);
  const auto& order = spec.ring_order();
  std::size_t i = 0;
  for (auto _ : state) {
    const Label& me = order[i % order.size()];
    const NodeSpec& s = spec.expected(me);
    benchmark::DoNotOptimize(
        expected_shortcut_labels(me, s.left ? s.left : s.ring, s.right ? s.right : s.ring));
    ++i;
  }
}
BENCHMARK(BM_ShortcutDerivation);

}  // namespace

SSPS_BENCH_MAIN("degree", print_experiment)
