// Experiments E6/E7 — Theorems 17 & 23: publication convergence cost of
// the Merkle-Patricia anti-entropy vs the naive full-state baseline, and
// the silence of a converged system.
#include "baseline/antientropy.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "pubsub/pubsub_node.hpp"

namespace {

using namespace ssps;
using namespace ssps::core;
using namespace ssps::pubsub;

struct SyncCost {
  std::size_t rounds = 0;
  std::uint64_t bytes_to_converge = 0;
  std::uint64_t steady_bytes_per_round = 0;
};

SyncCost measure_patricia(std::size_t n, std::size_t pubs, std::uint64_t seed) {
  PubSubConfig cfg;
  cfg.flooding = false;
  PubSubSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0}, cfg);
  const auto ids = sys.add_pubsub_subscribers(n);
  sys.run_until_legit(5000);
  Rng rng(seed + 1);
  for (std::size_t i = 0; i < pubs; ++i) {
    const auto at = ids[rng.pick_index(ids)];
    sys.pubsub(at).add_local(Publication{at, "payload-" + std::to_string(i)});
  }
  sys.net().metrics().reset();
  const auto rounds =
      sys.net().run_until([&] { return sys.publications_converged(); }, 20000);
  SyncCost out;
  out.rounds = rounds.value_or(0);
  auto sync_bytes = [&] {
    const auto& m = sys.net().metrics();
    return m.sent_bytes("CheckTrie") + m.sent_bytes("CheckAndPublish") +
           m.sent_bytes("Publish");
  };
  out.bytes_to_converge = sync_bytes();
  sys.net().metrics().reset();
  sys.net().run_rounds(20);
  out.steady_bytes_per_round = sync_bytes() / 20;
  return out;
}

SyncCost measure_naive(std::size_t n, std::size_t pubs, std::uint64_t seed) {
  class NaiveSystem : public SkipRingSystem {
   public:
    using SkipRingSystem::SkipRingSystem;
  };
  NaiveSystem sys(SkipRingSystem::Options{.seed = seed, .fd_delay = 0});
  std::vector<sim::NodeId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(sys.net().spawn<baseline::NaiveSyncNode>(sys.supervisor_id()));
  }
  sys.run_until_legit(5000);
  auto sync = [&](sim::NodeId id) -> baseline::NaiveSyncProtocol& {
    return sys.net().node_as<baseline::NaiveSyncNode>(id).sync();
  };
  Rng rng(seed + 1);
  for (std::size_t i = 0; i < pubs; ++i) {
    const auto at = ids[rng.pick_index(ids)];
    sync(at).add_local(Publication{at, "payload-" + std::to_string(i)});
  }
  sys.net().metrics().reset();
  const auto rounds = sys.net().run_until(
      [&] {
        for (sim::NodeId id : ids) {
          if (sync(id).size() != pubs) return false;
        }
        return true;
      },
      20000);
  SyncCost out;
  out.rounds = rounds.value_or(0);
  out.bytes_to_converge = sys.net().metrics().sent_bytes("FullState");
  sys.net().metrics().reset();
  sys.net().run_rounds(20);
  out.steady_bytes_per_round = sys.net().metrics().sent_bytes("FullState") / 20;
  return out;
}

void print_experiment() {
  Table table({"n", "pubs", "scheme", "rounds", "KB to converge", "steady KB/round"});
  for (std::size_t pubs : {16u, 64u, 256u}) {
    const std::size_t n = 32;
    const SyncCost patricia = measure_patricia(n, pubs, 1000 + pubs);
    const SyncCost naive = measure_naive(n, pubs, 1000 + pubs);
    auto add = [&](const char* scheme, const SyncCost& c) {
      table.add_row({Table::num(static_cast<std::uint64_t>(n)),
                     Table::num(static_cast<std::uint64_t>(pubs)), scheme,
                     Table::num(static_cast<std::uint64_t>(c.rounds)),
                     Table::num(static_cast<double>(c.bytes_to_converge) / 1024.0, 1),
                     Table::num(static_cast<double>(c.steady_bytes_per_round) / 1024.0,
                                2)});
    };
    add("patricia (paper)", patricia);
    add("naive full-state", naive);
  }
  table.print(
      "E6+E7 / Theorems 17 & 23 — publication convergence cost, Patricia trie "
      "vs naive anti-entropy (expect: Patricia steady-state KB/round flat & "
      "small = closure silence; naive grows with corpus)");
}

void BM_TwoPartySync(benchmark::State& state) {
  // Cost of one full CheckTrie divergence walk between two tries differing
  // in one publication, as a function of the shared corpus size. The tries
  // are built once; the walk itself is read-only.
  const std::size_t corpus = static_cast<std::size_t>(state.range(0));
  PatriciaTrie a(64);
  PatriciaTrie b(64);
  for (std::size_t i = 0; i < corpus; ++i) {
    const Publication p{sim::NodeId{1}, "c" + std::to_string(i)};
    a.insert(p);
    b.insert(p);
  }
  a.insert(Publication{sim::NodeId{2}, "diff"});
  for (auto _ : state) {
    // Walk the divergence the way CheckTrie does (root to leaf).
    std::vector<NodeSummary> frontier{*a.root()};
    std::size_t exchanged = 0;
    while (!frontier.empty()) {
      std::vector<NodeSummary> next;
      for (const NodeSummary& t : frontier) {
        const Locate loc = b.locate(t.label);
        ++exchanged;
        if (loc.kind == Locate::Kind::kExact && loc.node.hash != t.hash) {
          const Locate mine = a.locate(t.label);
          for (const auto& c : mine.children) next.push_back(c);
        }
      }
      frontier = std::move(next);
    }
    benchmark::DoNotOptimize(exchanged);
  }
}
BENCHMARK(BM_TwoPartySync)->Arg(64)->Arg(1024)->Arg(8192)->Unit(benchmark::kMicrosecond);

}  // namespace

SSPS_BENCH_MAIN("pub_convergence", print_experiment)
